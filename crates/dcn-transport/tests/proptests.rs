//! Property-based tests of transport invariants under adversarial
//! ack/grant/timer sequences.

use dcn_sim::packet::{FlowId, Packet, PacketKind, MSS_BYTES};
use dcn_sim::time::SimTime;
use dcn_sim::topology::NodeId;
use dcn_sim::transport::{Actions, FlowSpec, PacketIdAlloc, Transport, TransportCtx, TransportFactory};
use dcn_transport::homa::HomaFactory;
use dcn_transport::tcp::TcpFactory;
use proptest::prelude::*;

fn spec(size: u64) -> FlowSpec {
    FlowSpec {
        id: FlowId(9),
        src: NodeId(0),
        dst: NodeId(1),
        size_bytes: size,
        start: SimTime::ZERO,
    }
}

/// Drive a sender with an arbitrary interleaving of (possibly bogus) acks
/// and timer firings; check safety invariants throughout.
fn fuzz_tcp_sender(factory: &TcpFactory, size: u64, events: &[(u64, bool)]) -> Result<(), TestCaseError> {
    let mut s = factory.sender(&spec(size));
    let mut ids = PacketIdAlloc::new(NodeId(0));
    let mut out = Actions::default();
    let mut now = 0.0f64;
    {
        let mut ctx = TransportCtx {
            now: SimTime::from_secs_f64(now),
            ids: &mut ids,
        };
        s.on_start(&mut ctx, &mut out);
    }
    let mut max_token = out.timers.last().map(|t| t.1).unwrap_or(0);
    let mut completed = false;
    for &(ack_raw, is_timer) in events {
        now += 0.001;
        out.clear();
        let mut ctx = TransportCtx {
            now: SimTime::from_secs_f64(now),
            ids: &mut ids,
        };
        if is_timer {
            s.on_timer(max_token, &mut ctx, &mut out);
        } else {
            // Acks clamped into [0, size] but otherwise arbitrary
            // (duplicates, regressions, jumps).
            let ack = Packet::ack(
                ids_next_stub(),
                FlowId(9),
                NodeId(1),
                NodeId(0),
                ack_raw % (size + 1),
                false,
                SimTime::from_secs_f64(now - 0.0005),
                SimTime::from_secs_f64(now),
            );
            s.on_packet(&ack, &mut ctx, &mut out);
        }
        if let Some(t) = out.timers.last() {
            max_token = t.1;
        }
        // Safety: every emitted segment lies within the flow.
        for p in &out.sends {
            prop_assert!(p.kind == PacketKind::Data);
            prop_assert!(p.seq + p.payload as u64 <= size, "segment beyond flow end");
            prop_assert!(p.payload > 0);
        }
        if out.completed {
            completed = true;
        }
        if completed {
            break;
        }
    }
    Ok(())
}

static STUB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1 << 50);
fn ids_next_stub() -> u64 {
    STUB.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

proptest! {
    #[test]
    fn tcp_senders_never_emit_out_of_range(
        size_segs in 1u64..40,
        events in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..60)
    ) {
        let size = size_segs * MSS_BYTES as u64;
        fuzz_tcp_sender(&TcpFactory::new_reno(), size, &events)?;
        fuzz_tcp_sender(&TcpFactory::dctcp(), size, &events)?;
        fuzz_tcp_sender(&TcpFactory::vegas(), size, &events)?;
        fuzz_tcp_sender(&TcpFactory::westwood(), size, &events)?;
    }

    /// A sender completes exactly when the cumulative ack reaches the flow
    /// size, regardless of the ack path taken.
    #[test]
    fn tcp_completion_iff_fully_acked(acks in proptest::collection::vec(1u64..=10, 1..30)) {
        let size = 10 * MSS_BYTES as u64;
        let f = TcpFactory::new_reno();
        let mut s = f.sender(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        let mut now = 0.0;
        {
            let mut ctx = TransportCtx { now: SimTime::from_secs_f64(now), ids: &mut ids };
            s.on_start(&mut ctx, &mut out);
        }
        let mut highest = 0u64;
        for a in acks {
            now += 0.001;
            let ack_no = a * MSS_BYTES as u64;
            out.clear();
            let ack = Packet::ack(ids_next_stub(), FlowId(9), NodeId(1), NodeId(0), ack_no, false,
                SimTime::from_secs_f64(now - 0.0005), SimTime::from_secs_f64(now));
            let mut ctx = TransportCtx { now: SimTime::from_secs_f64(now), ids: &mut ids };
            s.on_packet(&ack, &mut ctx, &mut out);
            highest = highest.max(ack_no);
            prop_assert_eq!(
                out.completed,
                highest >= size && ack_no == highest,
                "completed={} at ack {}, highest {}",
                out.completed,
                ack_no,
                highest
            );
            if out.completed {
                break;
            }
        }
    }

    /// TCP receivers ack monotonically and never beyond received data.
    #[test]
    fn tcp_receiver_cum_ack_monotone(order in proptest::collection::vec(0u64..10, 1..40)) {
        use dcn_transport::tcp::TcpReceiver;
        let size = 10 * MSS_BYTES as u64;
        let mut r = TcpReceiver::new(spec(size), false);
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let mut out = Actions::default();
        let mut prev_ack = 0u64;
        let mut delivered_total = 0u64;
        for (i, seg) in order.iter().enumerate() {
            let seq = seg * MSS_BYTES as u64;
            let mut p = Packet::data(i as u64 + 1, FlowId(9), NodeId(0), NodeId(1), seq, MSS_BYTES, false, SimTime::ZERO);
            p.flow_size = size;
            out.clear();
            let mut ctx = TransportCtx { now: SimTime::from_secs_f64(0.001 * i as f64), ids: &mut ids };
            r.on_packet(&p, &mut ctx, &mut out);
            let ack = out.sends.iter().find(|p| p.kind == PacketKind::Ack).expect("receiver acks every data packet");
            prop_assert!(ack.seq >= prev_ack, "ack regressed");
            prop_assert!(ack.seq <= size);
            prev_ack = ack.seq;
            delivered_total += out.delivered;
            prop_assert_eq!(delivered_total, prev_ack, "delivered bytes track the prefix");
        }
    }

    /// Homa sender: grants only ever extend transmission; the granted
    /// horizon never exceeds the message.
    #[test]
    fn homa_granted_bounded(grants in proptest::collection::vec(any::<u64>(), 1..30)) {
        let size = 200_000u64;
        let f = HomaFactory::default();
        let mut s = f.sender(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        {
            let mut ctx = TransportCtx { now: SimTime::ZERO, ids: &mut ids };
            s.on_start(&mut ctx, &mut out);
        }
        let mut total_payload: u64 = out.sends.iter().map(|p| p.payload as u64).sum();
        let mut highest_seq_end = out.sends.iter().map(|p| p.seq + p.payload as u64).max().unwrap_or(0);
        for (i, g) in grants.iter().enumerate() {
            out.clear();
            let mut grant = Packet::ack(ids_next_stub(), FlowId(9), NodeId(1), NodeId(0), g % (2 * size), false,
                SimTime::ZERO, SimTime::from_secs_f64(0.001 * i as f64));
            grant.kind = PacketKind::Grant;
            grant.meta = 0;
            let mut ctx = TransportCtx { now: SimTime::from_secs_f64(0.001 * i as f64), ids: &mut ids };
            s.on_packet(&grant, &mut ctx, &mut out);
            for p in &out.sends {
                prop_assert!(p.seq + p.payload as u64 <= size, "sent beyond message end");
                highest_seq_end = highest_seq_end.max(p.seq + p.payload as u64);
            }
            total_payload += out.sends.iter().map(|p| p.payload as u64).sum::<u64>();
        }
        // Without resend flags there are no retransmissions: total payload
        // equals the highest byte reached.
        prop_assert_eq!(total_payload, highest_seq_end);
    }

    /// RTO estimator: RTO always within [min, max] after arbitrary sample/
    /// timeout interleavings.
    #[test]
    fn rto_always_clamped(ops in proptest::collection::vec((1u64..100_000, any::<bool>()), 1..100)) {
        use dcn_sim::time::SimDuration;
        use dcn_transport::rto::RttEstimator;
        let mut e = RttEstimator::dc_default();
        for (us, timeout) in ops {
            if timeout {
                e.on_timeout();
            } else {
                e.sample(SimDuration::from_micros(us));
            }
            let rto = e.rto();
            prop_assert!(rto >= SimDuration::from_millis(10));
            prop_assert!(rto <= SimDuration::from_secs_f64(4.0));
        }
    }
}
