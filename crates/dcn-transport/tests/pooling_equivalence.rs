//! Endpoint recycling must be invisible per protocol: running every TCP
//! variant and Homa with the freelist on vs off must produce
//! byte-identical metric trajectories. This is the behavioral contract of
//! `Transport::reset` / `CongControl::reset` ("indistinguishable from
//! factory-fresh"), checked end-to-end through the engine where recycled
//! endpoints actually serve new flows.

use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use dcn_sim::time::SimDuration;
use dcn_sim::transport::TransportFactory;
use dcn_transport::homa::HomaFactory;
use dcn_transport::tcp::TcpFactory;

fn run(factory: Box<dyn TransportFactory>, pooling: bool) -> Vec<u8> {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 0.5;
    cfg.seed = 113;
    let mut sim = Simulation::with_transport(cfg, factory);
    if !pooling {
        sim.disable_endpoint_pooling();
    }
    let leftover = sim.run_window(sim.end_time() + SimDuration::from_nanos(1));
    assert!(leftover.is_empty(), "sequential run exported remote events");
    let flows = sim.metrics().flows_started();
    assert!(flows > 8, "too few flows ({flows}) to exercise recycling");
    sim.metrics().canonical_bytes()
}

type MakeFactory = fn() -> Box<dyn TransportFactory>;

#[test]
fn endpoint_pooling_is_trajectory_invariant_per_protocol() {
    let factories: [(&str, MakeFactory); 5] = [
        ("reno", || Box::new(TcpFactory::new_reno())),
        ("dctcp", || Box::new(TcpFactory::dctcp())),
        ("vegas", || Box::new(TcpFactory::vegas())),
        ("westwood", || Box::new(TcpFactory::westwood())),
        ("homa", || Box::new(HomaFactory::default())),
    ];
    for (name, make) in factories {
        let pooled = run(make(), true);
        let fresh = run(make(), false);
        assert_eq!(
            pooled, fresh,
            "{name}: recycled endpoints changed the trajectory"
        );
    }
}
