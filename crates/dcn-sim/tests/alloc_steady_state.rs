//! The sequential event loop must be allocation-light in steady state.
//!
//! Counterpart of `mimicnet/tests/alloc_free_batched.rs` for the engine
//! itself (first step of the ROADMAP arena audit): after a warmup window
//! that grows every arena to steady-state capacity — event heap, link
//! queues, transport scratch, metric sample buffers — continuing the run
//! may allocate only for genuinely new state (flow endpoints, their
//! transport boxes) plus amortized container growth, never per event or
//! per packet.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BY_SIZE: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

fn bucket(size: usize) -> usize {
    (usize::BITS - size.max(1).leading_zeros()) as usize % 16
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BY_SIZE[bucket(layout.size())].fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use dcn_sim::time::SimDuration;

#[test]
fn sequential_event_loop_is_allocation_light_after_warmup() {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 1.0;
    cfg.seed = 42;
    let mut sim = Simulation::new(cfg);

    // Warm up half the run: the event heap, per-port queues, endpoint
    // maps, and sample buffers all reach (or overshoot toward) their
    // steady-state capacity.
    let half = SimDuration::from_secs_f64(cfg.duration_s / 2.0);
    let mid = dcn_sim::time::SimTime::ZERO + half;
    let leftover = sim.run_window(mid);
    assert!(leftover.is_empty(), "sequential run exported remote events");
    let events_before = sim.metrics().events_processed;
    let flows_before = sim.metrics().flows_started();

    let before = ALLOCS.load(Ordering::Relaxed);
    let snap: Vec<u64> = BY_SIZE.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let leftover = sim.run_window(sim.end_time() + SimDuration::from_nanos(1));
    let after = ALLOCS.load(Ordering::Relaxed);
    // Per-size-class deltas, folded into the failure message so a tripped
    // budget points straight at the allocation site's size class.
    let breakdown: String = snap
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            let d = BY_SIZE[i].load(Ordering::Relaxed) - s;
            (d > 0).then(|| format!("\n  size <=2^{i}: {d} allocs"))
        })
        .collect();
    assert!(leftover.is_empty(), "sequential run exported remote events");

    let events = sim.metrics().events_processed - events_before;
    let flows = sim.metrics().flows_started() - flows_before;
    let allocs = after - before;
    // With the event-node pool and endpoint freelists in place, a new flow
    // costs at most one allocation beyond the recycled state (a metrics
    // map entry); everything else must be amortized container doubling.
    // Any per-event or per-packet churn sneaking into the hot path trips
    // this immediately.
    let budget = flows as u64 + 64;
    assert!(
        allocs <= budget,
        "hot loop allocated {allocs} times over {events} events \
         ({flows} new flows; budget {budget}); by size class:{breakdown}"
    );
    assert!(events > 1000, "measurement window too small: {events} events");
}
