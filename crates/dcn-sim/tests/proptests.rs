//! Property-based tests (proptest) for the simulator's core invariants.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::config::SimConfig;
use dcn_sim::fault::FaultPlan;
use dcn_sim::instrument::Metrics;
use dcn_sim::simulator::Simulation;
use dcn_sim::event::{EventKind, EventQueue};
use dcn_sim::link::Dir;
use dcn_sim::packet::{FlowId, Packet, MSS_BYTES};
use dcn_sim::queue::{EnqueueOutcome, PortQueue, QueueConfig};
use dcn_sim::rng::{EmpiricalCdf, SplitMix64};
use dcn_sim::routing::Router;
use dcn_sim::stats::percentile;
use dcn_sim::time::{SimDuration, SimTime};
use dcn_sim::topology::{FatTree, FatTreeParams, NodeKind};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order and none are lost.
    #[test]
    fn event_queue_is_a_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), EventKind::FlowArrival { host: dcn_sim::topology::NodeId((i % 16) as u32) });
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e.time.0);
        }
        prop_assert_eq!(popped.len(), times.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(popped, sorted);
    }

    /// Any (flow, src, dst) routes to the destination via a strict
    /// up-down path bounded by the FatTree diameter.
    #[test]
    fn routing_reaches_destination_up_down(
        flow in 0u64..10_000,
        src_idx in 0u32..32,
        dst_idx in 0u32..32,
        clusters in 2u32..6,
    ) {
        let params = FatTreeParams::new(clusters, 2, 2, 2, 2);
        let topo = FatTree::new(params);
        let router = Router::new(topo.clone());
        let n_hosts = params.num_hosts();
        let src = dcn_sim::topology::NodeId(src_idx % n_hosts);
        let dst = dcn_sim::topology::NodeId(dst_idx % n_hosts);
        prop_assume!(src != dst);
        let path = router.path(FlowId(flow), src, dst);
        prop_assert_eq!(*path.first().unwrap(), src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert!(path.len() <= 7);
        // Strict up-down: tier ranks rise to a single peak then fall.
        let rank = |n| match topo.kind(n) {
            NodeKind::Host => 0i32,
            NodeKind::Tor => 1,
            NodeKind::Agg => 2,
            NodeKind::Core => 3,
        };
        let ranks: Vec<i32> = path.iter().map(|&n| rank(n)).collect();
        let peak = ranks.iter().enumerate().max_by_key(|(_, &r)| r).unwrap().0;
        prop_assert!(ranks[..=peak].windows(2).all(|w| w[1] == w[0] + 1), "ascent not strict: {ranks:?}");
        prop_assert!(ranks[peak..].windows(2).all(|w| w[1] == w[0] - 1), "descent not strict: {ranks:?}");
    }

    /// Queues conserve packets/bytes and never exceed capacity.
    #[test]
    fn queue_conservation(ops in proptest::collection::vec((0u32..1461, any::<bool>()), 1..300)) {
        let cap = 20_000u64;
        let mut q = PortQueue::new(QueueConfig::drop_tail(cap));
        let mut accepted = 0u64;
        let mut dequeued = 0u64;
        let mut id = 0u64;
        for (payload, do_dequeue) in ops {
            id += 1;
            let p = Packet::data(id, FlowId(1), dcn_sim::topology::NodeId(0), dcn_sim::topology::NodeId(1), 0, payload, false, SimTime::ZERO);
            match q.enqueue(p) {
                EnqueueOutcome::Enqueued { .. } => accepted += 1,
                EnqueueOutcome::Dropped => {}
            }
            prop_assert!(q.len_bytes() <= cap);
            if do_dequeue && q.dequeue().is_some() {
                dequeued += 1;
            }
        }
        prop_assert_eq!(accepted, dequeued + q.len_pkts() as u64);
        prop_assert_eq!(accepted + q.dropped, id);
    }

    /// W1 is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn w1_metric_axioms(
        a in proptest::collection::vec(0.0f64..100.0, 1..50),
        b in proptest::collection::vec(0.0f64..100.0, 1..50),
        c in proptest::collection::vec(0.0f64..100.0, 1..50),
    ) {
        prop_assert!(wasserstein1(&a, &a) < 1e-12);
        let ab = wasserstein1(&a, &b);
        let ba = wasserstein1(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        let bc = wasserstein1(&b, &c);
        let ac = wasserstein1(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {ac} > {ab} + {bc}");
    }

    /// W1 of a shifted sample set equals the shift.
    #[test]
    fn w1_shift_invariance(xs in proptest::collection::vec(0.0f64..10.0, 2..100), shift in 0.0f64..5.0) {
        let ys: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let d = wasserstein1(&xs, &ys);
        prop_assert!((d - shift).abs() < 1e-9, "d = {d}, shift = {shift}");
    }

    /// Percentiles are monotone in p and bounded by the data range.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = percentile(&xs, p);
            prop_assert!(v >= prev);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            prev = v;
        }
    }

    /// Empirical CDF quantiles are monotone and within the value range.
    #[test]
    fn empirical_cdf_quantile_monotone(seed in 0u64..1000) {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (5.0, 0.4), (20.0, 1.0)]);
        let mut rng = SplitMix64::new(seed);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev);
            prop_assert!((0.0..=20.0).contains(&q));
            prev = q;
        }
        let s = cdf.sample(&mut rng);
        prop_assert!((0.0..=20.0).contains(&s));
    }

    /// SplitMix bounded sampling is in range; bernoulli respects 0/1.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(n) < n);
        }
        prop_assert!(!rng.bernoulli(0.0));
        prop_assert!(rng.bernoulli(1.0));
    }

    /// Identical seeds and an identical fault plan produce bit-identical
    /// metrics — fault injection must not break determinism.
    #[test]
    fn fault_injection_is_deterministic(
        sim_seed in 0u64..1000,
        plan_seed in 0u64..1000,
        loss in 0.0f64..0.1,
        from_ms in 10u64..100,
        span_ms in 10u64..150,
        mtbf_ms in 40u64..120,
    ) {
        let plan = FaultPlan::new(plan_seed)
            .gray_loss_all(
                SimTime::from_secs_f64(from_ms as f64 / 1e3),
                SimTime::from_secs_f64((from_ms + span_ms) as f64 / 1e3),
                loss,
                true,
            )
            .random_flaps(
                SimDuration::from_millis(mtbf_ms),
                SimDuration::from_millis(mtbf_ms / 4),
            );
        let run = || {
            let mut cfg = SimConfig::small_scale();
            cfg.duration_s = 0.25;
            cfg.seed = sim_seed;
            let mut sim = Simulation::new(cfg);
            sim.set_fault_plan(&plan).expect("valid plan");
            sim.run()
        };
        prop_assert!(metrics_identical(&run(), &run()));
    }

    /// A fault plan with no specs is indistinguishable from running with
    /// no plan at all — the zero-fault trajectory is preserved exactly.
    #[test]
    fn zero_fault_plan_equals_no_plan(sim_seed in 0u64..1000) {
        let mut cfg = SimConfig::small_scale();
        cfg.duration_s = 0.25;
        cfg.seed = sim_seed;
        let baseline = Simulation::new(cfg).run();
        let mut sim = Simulation::new(cfg);
        sim.set_fault_plan(&FaultPlan::none()).expect("valid plan");
        let with_plan = sim.run();
        prop_assert!(metrics_identical(&baseline, &with_plan));
        prop_assert_eq!(with_plan.fault_drops, 0);
        prop_assert_eq!(with_plan.reroutes, 0);
    }

    /// ECN marking never occurs below threshold and never on incapable
    /// packets; dequeue order within a band is FIFO.
    #[test]
    fn ecn_marking_respects_threshold(k in 1u32..10, n in 1usize..40) {
        let mut q = PortQueue::new(QueueConfig::ecn(1_000_000, k));
        let mut marked_below = 0;
        for i in 0..n {
            let p = Packet::data(i as u64 + 1, FlowId(1), dcn_sim::topology::NodeId(0), dcn_sim::topology::NodeId(1), 0, MSS_BYTES, true, SimTime::ZERO);
            let occupancy_before = q.len_pkts();
            if let EnqueueOutcome::Enqueued { marked: true } = q.enqueue(p) {
                if occupancy_before < k {
                    marked_below += 1;
                }
            }
        }
        prop_assert_eq!(marked_below, 0);
    }
}

/// Byte-level equality over the observable surface of [`Metrics`]:
/// every counter, every flow record (in canonical id order — the flows
/// map itself has no deterministic iteration order), every RTT sample,
/// and every boundary event. Two runs agreeing here took identical
/// trajectories.
fn metrics_identical(a: &Metrics, b: &Metrics) -> bool {
    fn canonical(m: &Metrics) -> String {
        let mut flows: Vec<(u64, String)> = m
            .flows
            .iter()
            .map(|(id, rec)| (id.0, serde_json::to_string(rec).expect("flow serializes")))
            .collect();
        flows.sort_unstable();
        format!(
            "{} {} {} {} {} {} {} {} {:?} {:?} {} {}",
            m.events_processed,
            m.hops_forwarded,
            m.queue_drops,
            m.mimic_drops,
            m.ecn_marks,
            m.fault_drops,
            m.reroutes,
            m.total_delivered_bytes(),
            m.fct_samples(|_| true),
            flows,
            serde_json::to_string(&m.rtt).expect("rtt serializes"),
            serde_json::to_string(&m.boundary).expect("boundary serializes"),
        )
    }
    canonical(a) == canonical(b)
}

/// Non-proptest sanity companion: directions on a duplex link are
/// independent queues (exhaustive over small cases).
#[test]
fn duplex_directions_independent() {
    use dcn_sim::link::{DuplexLink, LinkSpec};
    use dcn_sim::time::SimDuration;
    let mut l = DuplexLink::new(
        LinkSpec {
            bandwidth_bps: 1_000_000,
            latency: SimDuration::from_micros(10),
        },
        QueueConfig::drop_tail(10_000),
        QueueConfig::drop_tail(10_000),
    );
    let p = Packet::data(
        1,
        FlowId(1),
        dcn_sim::topology::NodeId(0),
        dcn_sim::topology::NodeId(1),
        0,
        100,
        false,
        SimTime::ZERO,
    );
    l.tx_mut(Dir::Up).queue.enqueue(p.clone());
    assert_eq!(l.tx(Dir::Up).queue.len_pkts(), 1);
    assert_eq!(l.tx(Dir::Down).queue.len_pkts(), 0);
}
