//! Whole-engine equivalence: the pooled event queue and the endpoint
//! freelists are pure performance work — they must not move a single bit
//! of the simulated trajectory or of a checkpoint.
//!
//! Four engines run the same small-scale scenario: {pooled queue,
//! reference `BinaryHeap` queue} × {endpoint pooling on, off}. All four
//! must produce byte-identical metrics and byte-identical mid-run
//! snapshots.

use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use dcn_sim::time::{SimDuration, SimTime};

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 0.5;
    cfg.seed = 97;
    cfg
}

struct RunOutput {
    mid_snapshot: Vec<u8>,
    metrics: Vec<u8>,
}

/// Run to completion, snapshotting once at the midpoint.
fn run(reference_queue: bool, pooling: bool) -> RunOutput {
    let cfg = cfg();
    let mut sim = Simulation::new(cfg);
    if reference_queue {
        sim.use_reference_queue();
    }
    if !pooling {
        sim.disable_endpoint_pooling();
    }
    let mid = SimTime::ZERO + SimDuration::from_secs_f64(cfg.duration_s / 2.0);
    let leftover = sim.run_window(mid);
    assert!(leftover.is_empty(), "sequential run exported remote events");
    let mid_snapshot = sim.save_snapshot().expect("mid-run snapshot");
    let leftover = sim.run_window(sim.end_time() + SimDuration::from_nanos(1));
    assert!(leftover.is_empty(), "sequential run exported remote events");
    RunOutput {
        mid_snapshot,
        metrics: sim.metrics().canonical_bytes(),
    }
}

#[test]
fn pooled_engine_matches_reference_bit_for_bit() {
    let baseline = run(true, false); // reference queue, no pooling: PR 6 behavior
    for (reference_queue, pooling) in [(true, true), (false, false), (false, true)] {
        let label = format!("reference_queue={reference_queue} pooling={pooling}");
        let out = run(reference_queue, pooling);
        assert_eq!(
            baseline.metrics, out.metrics,
            "{label}: trajectory diverged from the un-pooled reference engine"
        );
        assert_eq!(
            baseline.mid_snapshot, out.mid_snapshot,
            "{label}: mid-run snapshot bytes diverged"
        );
    }
}

#[test]
fn pooled_snapshot_restores_into_reference_engine_and_vice_versa() {
    // Snapshot portability across queue implementations: restore the
    // pooled engine's midpoint state into a reference-queue engine (and
    // the reverse) and finish the run — the final metrics must match an
    // uninterrupted pooled run.
    let full = run(false, true);

    for restore_into_reference in [true, false] {
        let cfg = cfg();
        let mut src = Simulation::new(cfg);
        if !restore_into_reference {
            // Reference source, pooled destination (and vice versa below).
            src.use_reference_queue();
        }
        let mid = SimTime::ZERO + SimDuration::from_secs_f64(cfg.duration_s / 2.0);
        let leftover = src.run_window(mid);
        assert!(leftover.is_empty());
        let bytes = src.save_snapshot().expect("mid-run snapshot");

        let mut dst = Simulation::new(cfg);
        if restore_into_reference {
            dst.use_reference_queue();
        }
        dst.restore_snapshot(&bytes).expect("cross-engine restore");
        let leftover = dst.run_window(dst.end_time() + SimDuration::from_nanos(1));
        assert!(leftover.is_empty());
        assert_eq!(
            full.metrics,
            dst.metrics().canonical_bytes(),
            "cross-engine restore (into reference={restore_into_reference}) diverged"
        );
    }
}
