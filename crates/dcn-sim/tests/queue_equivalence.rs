//! Property tests locking the pooled event queue to the `BinaryHeap`
//! reference implementation (DESIGN.md §12).
//!
//! Both engines must produce **byte-identical** event orderings and
//! snapshot encodings under arbitrary interleavings of scheduling,
//! cancellation (pops — the engine layer cancels lazily, so a pop is the
//! removal primitive), and snapshot/restore — and that must hold at every
//! partition count the PDES layer runs (1/2/4 queues fed disjoint slices
//! of the op stream).

use dcn_sim::event::{EventKind, EventQueue};
use dcn_sim::link::Dir;
use dcn_sim::packet::{FlowId, Packet};
use dcn_sim::snapshot::{SnapReader, SnapWriter};
use dcn_sim::time::SimTime;
use dcn_sim::topology::{LinkId, NodeId};
use proptest::prelude::*;

/// Build a mixed-kind event from two raw random words, covering every
/// variant (including packet-carrying `Arrive`, the pool's reason to
/// exist) with collision-heavy payload fields so `tag` tiebreaks engage.
fn kind_of(a: u64, b: u64) -> EventKind {
    match a % 6 {
        0 => EventKind::TxDone {
            link: LinkId((b % 16) as u32),
            dir: if b.is_multiple_of(2) { Dir::Up } else { Dir::Down },
        },
        1 => {
            let mut p = Packet::data(
                b,
                FlowId(b % 8),
                NodeId((b % 32) as u32),
                NodeId(((b + 1) % 32) as u32),
                b % 11,
                1000,
                b.is_multiple_of(3),
                SimTime(b % 50),
            );
            p.flow_size = 10_000;
            EventKind::Arrive {
                node: NodeId((b % 32) as u32),
                packet: p,
            }
        }
        2 => EventKind::Timer {
            host: NodeId((b % 16) as u32),
            flow: FlowId(b % 8),
            token: b % 13,
        },
        3 => EventKind::FlowArrival {
            host: NodeId((b % 16) as u32),
        },
        4 => EventKind::FeederWake {
            cluster: (b % 4) as u32,
        },
        _ => EventKind::Fault {
            index: (b % 10) as u32,
        },
    }
}

/// Full fingerprint of a popped event (time + every payload field, via the
/// derived Debug repr — cheap and exhaustive for a test).
fn fp(e: &dcn_sim::event::Event) -> String {
    format!("{:?}@{:?}", e.time.0, e.kind)
}

/// Apply one op stream to `parts` pooled/reference queue pairs and check
/// byte-identical behavior throughout. Each op is (selector, time, payload);
/// the pair index is derived from the payload so streams interleave across
/// partitions like PDES LPs interleave scheduling.
fn check_equivalence(ops: &[(u8, u64, u64)], parts: usize) -> Result<(), TestCaseError> {
    let mut pooled: Vec<EventQueue> = (0..parts).map(|_| EventQueue::new()).collect();
    let mut heap: Vec<EventQueue> = (0..parts).map(|_| EventQueue::new_reference()).collect();
    for &(sel, time, payload) in ops {
        let p = (payload % parts as u64) as usize;
        match sel % 8 {
            // Schedule (selectors 0..=5 weight scheduling 6:2 against the
            // other ops so queues grow and tiebreaks pile up). Times are
            // drawn from a tiny range on purpose: simultaneity is the
            // hard case.
            0..=5 => {
                let t = SimTime(time % 37);
                pooled[p].schedule(t, kind_of(sel as u64, payload));
                heap[p].schedule(t, kind_of(sel as u64, payload));
            }
            // Cancel: the engine cancels lazily, so removal == pop.
            6 => {
                let a = pooled[p].pop().map(|e| fp(&e));
                let b = heap[p].pop().map(|e| fp(&e));
                prop_assert_eq!(a, b, "mid-stream pop diverged (partition {})", p);
            }
            // Snapshot round-trip: bytes must match, and both byte strings
            // must restore into either implementation.
            _ => {
                let mut wp = SnapWriter::new();
                let mut wh = SnapWriter::new();
                pooled[p].save_state(&mut wp);
                heap[p].save_state(&mut wh);
                let (bp, bh) = (wp.into_bytes(), wh.into_bytes());
                prop_assert_eq!(&bp, &bh, "snapshot bytes diverged (partition {})", p);
                // Cross-restore: pooled bytes -> reference queue and
                // reference bytes -> pooled queue, then continue the run on
                // the restored queues.
                let mut np = EventQueue::new();
                np.load_state(&mut SnapReader::new(&bh))
                    .map_err(|e| TestCaseError::fail(format!("pooled restore: {e:?}")))?;
                let mut nh = EventQueue::new_reference();
                nh.load_state(&mut SnapReader::new(&bp))
                    .map_err(|e| TestCaseError::fail(format!("heap restore: {e:?}")))?;
                prop_assert_eq!(np.len(), pooled[p].len());
                prop_assert_eq!(np.total_scheduled(), pooled[p].total_scheduled());
                pooled[p] = np;
                heap[p] = nh;
            }
        }
        prop_assert_eq!(pooled[p].len(), heap[p].len());
        prop_assert_eq!(pooled[p].peek_time(), heap[p].peek_time());
    }
    // Drain everything: the full remaining order must match exactly.
    for p in 0..parts {
        loop {
            let a = pooled[p].pop().map(|e| fp(&e));
            let b = heap[p].pop().map(|e| fp(&e));
            prop_assert_eq!(&a, &b, "drain diverged (partition {})", p);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(pooled[p].total_scheduled(), heap[p].total_scheduled());
    }
    Ok(())
}

proptest! {
    #[test]
    fn pooled_queue_matches_reference_1_partition(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..400),
    ) {
        check_equivalence(&ops, 1)?;
    }

    #[test]
    fn pooled_queue_matches_reference_2_partitions(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..400),
    ) {
        check_equivalence(&ops, 2)?;
    }

    #[test]
    fn pooled_queue_matches_reference_4_partitions(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..400),
    ) {
        check_equivalence(&ops, 4)?;
    }
}
