//! The seam where learned cluster models plug into the simulator.
//!
//! A cluster in the simulation is either *full fidelity* (its ToR and
//! aggregation switches process packets normally) or *mimic'ed*: packets
//! crossing the cluster boundary are handed to a [`ClusterModel`], which
//! predicts the cluster's effects — drop, latency, ECN marking — without
//! simulating its internals (§4.1 of the paper). The `mimicnet` crate
//! provides the learned LSTM-based implementation; this module only defines
//! the interface plus a trivial reference model used in tests.
//!
//! Boundary semantics (matching the instrumentation junctures of §5.1):
//!
//! * **Egress**: invoked when a packet from a host of the mimic'ed cluster
//!   arrives at its ToR. The predicted latency spans everything up to and
//!   including arrival at the chosen core switch.
//! * **Ingress**: invoked when a packet arrives at the cluster's
//!   aggregation switch from a core. The predicted latency spans everything
//!   up to and including arrival at the destination host.

use crate::packet::Packet;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which way a packet is crossing the cluster boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BoundaryDir {
    /// Entering the cluster from a core switch, heading to a local host.
    Ingress,
    /// Leaving the cluster from a local host, heading to a core switch.
    Egress,
}

/// The fidelity at which one cluster is simulated.
///
/// Every cluster of a composed run sits at exactly one tier at any sim
/// time, and adaptive runs move clusters between tiers at PDES window
/// barriers only (DESIGN.md §13). The registry tables below (`COUNT`,
/// [`FidelityTier::index`], [`FidelityTier::name_of`],
/// [`FidelityTier::from_index`]) mirror the `EventKind` tables: a
/// tier-table guard test fails if a new tier is added without wiring its
/// snapshot/metrics paths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FidelityTier {
    /// Full packet-level simulation: the cluster's switches and hosts run
    /// in the event engine (ground truth).
    Packet,
    /// Learned LSTM Mimic: boundary packets get model-predicted verdicts
    /// (the paper's mechanism, `mimicnet::batch`).
    Mimic,
    /// Flow/fluid approximation: boundary packets get analytic rate-share
    /// latencies (optionally corrected by a learned head), no per-packet
    /// queueing. Cheapest, least accurate.
    Flow,
}

impl FidelityTier {
    /// Number of tiers. Every table indexed by [`FidelityTier::index`]
    /// must have exactly this many rows.
    pub const COUNT: usize = 3;

    /// Dense ordinal, `0..COUNT`. Also the on-disk encoding used by
    /// snapshots and the metrics tier schedule.
    pub fn index(self) -> usize {
        match self {
            FidelityTier::Packet => 0,
            FidelityTier::Mimic => 1,
            FidelityTier::Flow => 2,
        }
    }

    /// Decode an on-disk ordinal; `None` for out-of-range (corrupt) bytes.
    pub fn from_index(i: usize) -> Option<FidelityTier> {
        match i {
            0 => Some(FidelityTier::Packet),
            1 => Some(FidelityTier::Mimic),
            2 => Some(FidelityTier::Flow),
            _ => None,
        }
    }

    /// Human-readable tier name by ordinal (report labels, bench JSON).
    pub fn name_of(index: usize) -> &'static str {
        const NAMES: [&str; FidelityTier::COUNT] = ["packet", "mimic", "flow"];
        NAMES[index]
    }
}

/// One runtime fidelity transition: `cluster` moved `from → to` at epoch
/// barrier `epoch`. Recorded into `Metrics::tier_switches` by the engine,
/// so the tier schedule is part of the run's canonical bytes (the
/// partition-invariance acceptance check compares it across 1/2/4 LPs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TierSwitch {
    /// Epoch barrier index (absolute, derived from sim time — stable
    /// across checkpoint/resume).
    pub epoch: u64,
    /// The cluster that moved.
    pub cluster: u32,
    pub from: FidelityTier,
    pub to: FidelityTier,
}

/// A model's prediction of the cluster's effect on one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The cluster's queues would have dropped this packet.
    Drop,
    /// The packet survives and exits `latency` later, optionally CE-marked.
    Deliver {
        latency: SimDuration,
        mark_ce: bool,
    },
}

/// A stand-in for a cluster's internal network.
pub trait ClusterModel {
    /// Predict the effect on a packet crossing the boundary at `now`.
    fn on_packet(&mut self, dir: BoundaryDir, pkt: &Packet, now: SimTime) -> Verdict;

    /// When the model next wants a wakeup (feeder injection), if ever.
    /// Called after construction and after every [`ClusterModel::on_wake`].
    fn next_wake(&mut self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// A requested wakeup fired (MimicNet feeds synthetic inter-Mimic
    /// feature vectors here; outputs are discarded by design, §6).
    fn on_wake(&mut self, _now: SimTime) {}

    /// Drift score of the live traffic relative to the model's training
    /// distribution, if the model monitors it. Higher means further out of
    /// distribution; `None` means "not monitored". Read by the engine at
    /// the end of a run and exposed per cluster in
    /// [`crate::instrument::Metrics::cluster_drift`].
    fn drift(&self) -> Option<f64> {
        None
    }

    /// Serialize the model's mutable state (RNG streams, feeder cursors,
    /// recurrent hidden state, …) for a checkpoint. Immutable weights are
    /// *not* written; a restore re-creates the model from its bundle and
    /// then calls [`ClusterModel::load_state`]. The default refuses, so
    /// only opted-in models participate in checkpointed runs.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this ClusterModel implementation",
        ))
    }

    /// Overwrite the model's mutable state from a checkpoint produced by
    /// [`ClusterModel::save_state`] on an identically-configured model.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this ClusterModel implementation",
        ))
    }
}

/// One boundary packet queued for batched inference: everything a
/// [`BatchClusterModel`] needs to replay the crossing later, in order.
#[derive(Clone, Debug)]
pub struct BoundaryItem {
    /// The mimic'ed cluster the packet is crossing into/out of.
    pub cluster: u32,
    /// Crossing direction.
    pub dir: BoundaryDir,
    /// The packet itself (all-scalar; cloning does not allocate).
    pub pkt: Packet,
    /// Simulated time the packet hit the boundary. Feature extraction and
    /// re-injection both use this, not the flush time, so verdicts are
    /// independent of *when* the engine decides to flush.
    pub enqueued_at: SimTime,
}

/// A model serving *all* mimic'ed clusters of a simulation at once, so
/// boundary packets queued across an event window can be predicted in one
/// batched forward pass (the per-wakeup aggregation point of the PDES
/// compose mode).
///
/// Contract with the engine:
///
/// * `items` passed to [`BatchClusterModel::infer_batch`] arrive in
///   enqueue order (ties broken by the engine's deterministic event
///   order), and the verdict for each item must depend only on the items
///   at and before it — never on how the engine chunked the stream into
///   flushes. This is what makes sequential and partitioned composed runs
///   bit-identical.
/// * Predicted latencies must be at least [`BatchClusterModel::latency_floor`],
///   the engine's license to delay inference: a flush scheduled before
///   `oldest_enqueue + floor` can only produce strictly-future events.
///
/// Implementations must be `Send`: when overlapped flushing is enabled
/// (see `Simulation::set_batch_overlap`) the engine ships the boxed model
/// to a helper thread and back between flushes. The model is only ever
/// *used* by one thread at a time, so no `Sync` is required.
pub trait BatchClusterModel: Send {
    /// The cluster indices this model serves.
    fn clusters(&self) -> &[u32];

    /// Predict every queued item, appending one [`Verdict`] per item (in
    /// order) to `verdicts`. The engine clears `verdicts` beforehand and
    /// reuses the buffer across flushes.
    fn infer_batch(&mut self, items: &[BoundaryItem], verdicts: &mut Vec<Verdict>);

    /// Lower bound on every predicted latency (> 0). The engine may hold
    /// an item back for inference up to this long after its enqueue time.
    fn latency_floor(&self) -> SimDuration;

    /// When `cluster` next wants a feeder wakeup, if ever.
    fn next_wake(&mut self, cluster: u32, now: SimTime) -> Option<SimTime> {
        let _ = (cluster, now);
        None
    }

    /// A requested wakeup fired for `cluster`.
    fn on_wake(&mut self, cluster: u32, now: SimTime) {
        let _ = (cluster, now);
    }

    /// Drift score for `cluster` (see [`ClusterModel::drift`]).
    fn drift(&self, cluster: u32) -> Option<f64> {
        let _ = cluster;
        None
    }

    /// The fidelity tier `cluster` is currently served at. Fixed-fidelity
    /// models are all-Mimic by definition.
    fn tier(&self, cluster: u32) -> FidelityTier {
        let _ = cluster;
        FidelityTier::Mimic
    }

    /// Epoch-barrier hook for adaptive models: `drift[c]` is the merged
    /// cross-LP drift score of cluster `c` (the owning LP's value;
    /// `None` where unmonitored). The model updates its accuracy-budget
    /// accounting and applies any promotions/demotions *now* — the engine
    /// guarantees no batch is in flight — returning the switches it made.
    /// Every LP of a partitioned run calls this with identical inputs at
    /// the same barrier, so all replicas stay in lockstep. The default is
    /// a no-op (fixed-fidelity models never switch).
    fn on_epoch(&mut self, epoch: u64, drift: &[Option<f64>]) -> Vec<TierSwitch> {
        let _ = (epoch, drift);
        Vec::new()
    }

    /// Contribute model-side telemetry (lane-occupancy histograms, packet
    /// counters, …) to the engine's observability report at fold time.
    /// Called once per run, only when obs is enabled; the default adds
    /// nothing.
    fn append_obs(&self, out: &mut dcn_obs::ObsReport) {
        let _ = out;
    }

    /// Serialize mutable state for a checkpoint; see
    /// [`ClusterModel::save_state`] for the contract. Must only be called
    /// with no batch in flight (the engine settles first).
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this BatchClusterModel implementation",
        ))
    }

    /// Overwrite mutable state from a checkpoint; see
    /// [`ClusterModel::load_state`].
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this BatchClusterModel implementation",
        ))
    }
}

/// A reference model with constant latency and Bernoulli drops. Useful for
/// engine tests and as a degenerate baseline ("what if the Mimic learned
/// only averages?").
pub struct ConstModel {
    /// Latency applied to every surviving packet.
    pub latency: SimDuration,
    /// Independent drop probability.
    pub drop_prob: f64,
    rng: crate::rng::SplitMix64,
}

impl ConstModel {
    pub fn new(latency: SimDuration, drop_prob: f64, seed: u64) -> ConstModel {
        ConstModel {
            latency,
            drop_prob,
            rng: crate::rng::SplitMix64::derive(seed, 0x6100),
        }
    }
}

impl ClusterModel for ConstModel {
    fn on_packet(&mut self, _dir: BoundaryDir, _pkt: &Packet, _now: SimTime) -> Verdict {
        if self.drop_prob > 0.0 && self.rng.bernoulli(self.drop_prob) {
            Verdict::Drop
        } else {
            Verdict::Deliver {
                latency: self.latency,
                mark_ce: false,
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.rng.state());
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.get_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::topology::NodeId;

    fn pkt() -> Packet {
        Packet::data(1, FlowId(1), NodeId(0), NodeId(9), 0, 1000, false, SimTime::ZERO)
    }

    #[test]
    fn const_model_fixed_latency() {
        let mut m = ConstModel::new(SimDuration::from_micros(300), 0.0, 1);
        match m.on_packet(BoundaryDir::Egress, &pkt(), SimTime::ZERO) {
            Verdict::Deliver { latency, mark_ce } => {
                assert_eq!(latency, SimDuration::from_micros(300));
                assert!(!mark_ce);
            }
            Verdict::Drop => panic!("should not drop"),
        }
    }

    #[test]
    fn const_model_drop_rate() {
        let mut m = ConstModel::new(SimDuration::ZERO, 0.25, 42);
        let n = 10_000;
        let drops = (0..n)
            .filter(|_| {
                matches!(
                    m.on_packet(BoundaryDir::Ingress, &pkt(), SimTime::ZERO),
                    Verdict::Drop
                )
            })
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn default_model_never_wakes() {
        let mut m = ConstModel::new(SimDuration::ZERO, 0.0, 1);
        assert!(m.next_wake(SimTime::ZERO).is_none());
    }

    /// Guard for the tier registry, mirroring the `EventKind` table guard:
    /// adding a [`FidelityTier`] variant fails here (the no-`_` match stops
    /// compiling and the samples array below under-counts) until `COUNT`,
    /// `index`, `from_index`, and `name_of` are all re-wired — which is
    /// also the reminder to wire the new tier's snapshot/metrics paths.
    #[test]
    fn tier_tables_are_exhaustive_and_consistent() {
        // One sample per variant; the array length is pinned to COUNT so a
        // new variant without a sample is a compile error here.
        let samples: [FidelityTier; FidelityTier::COUNT] =
            [FidelityTier::Packet, FidelityTier::Mimic, FidelityTier::Flow];

        // Exhaustive ordinal match with no `_` arm: a new variant breaks
        // this match at compile time.
        let ordinal = |t: FidelityTier| -> usize {
            match t {
                FidelityTier::Packet => 0,
                FidelityTier::Mimic => 1,
                FidelityTier::Flow => 2,
            }
        };

        let mut seen = [false; FidelityTier::COUNT];
        let mut names = Vec::new();
        for &t in &samples {
            let i = t.index();
            assert_eq!(i, ordinal(t), "{t:?}: index() disagrees with ordinal");
            assert!(i < FidelityTier::COUNT, "{t:?}: index {i} out of range");
            assert!(!seen[i], "{t:?}: duplicate index {i}");
            seen[i] = true;
            assert_eq!(FidelityTier::from_index(i), Some(t), "{t:?}: round trip");
            names.push(FidelityTier::name_of(i));
        }
        assert!(seen.iter().all(|&s| s), "indices are not dense");
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate tier names: {names:?}");
        assert_eq!(FidelityTier::from_index(FidelityTier::COUNT), None);
    }
}
