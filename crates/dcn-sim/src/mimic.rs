//! The seam where learned cluster models plug into the simulator.
//!
//! A cluster in the simulation is either *full fidelity* (its ToR and
//! aggregation switches process packets normally) or *mimic'ed*: packets
//! crossing the cluster boundary are handed to a [`ClusterModel`], which
//! predicts the cluster's effects — drop, latency, ECN marking — without
//! simulating its internals (§4.1 of the paper). The `mimicnet` crate
//! provides the learned LSTM-based implementation; this module only defines
//! the interface plus a trivial reference model used in tests.
//!
//! Boundary semantics (matching the instrumentation junctures of §5.1):
//!
//! * **Egress**: invoked when a packet from a host of the mimic'ed cluster
//!   arrives at its ToR. The predicted latency spans everything up to and
//!   including arrival at the chosen core switch.
//! * **Ingress**: invoked when a packet arrives at the cluster's
//!   aggregation switch from a core. The predicted latency spans everything
//!   up to and including arrival at the destination host.

use crate::packet::Packet;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which way a packet is crossing the cluster boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BoundaryDir {
    /// Entering the cluster from a core switch, heading to a local host.
    Ingress,
    /// Leaving the cluster from a local host, heading to a core switch.
    Egress,
}

/// A model's prediction of the cluster's effect on one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The cluster's queues would have dropped this packet.
    Drop,
    /// The packet survives and exits `latency` later, optionally CE-marked.
    Deliver {
        latency: SimDuration,
        mark_ce: bool,
    },
}

/// A stand-in for a cluster's internal network.
pub trait ClusterModel {
    /// Predict the effect on a packet crossing the boundary at `now`.
    fn on_packet(&mut self, dir: BoundaryDir, pkt: &Packet, now: SimTime) -> Verdict;

    /// When the model next wants a wakeup (feeder injection), if ever.
    /// Called after construction and after every [`ClusterModel::on_wake`].
    fn next_wake(&mut self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// A requested wakeup fired (MimicNet feeds synthetic inter-Mimic
    /// feature vectors here; outputs are discarded by design, §6).
    fn on_wake(&mut self, _now: SimTime) {}

    /// Drift score of the live traffic relative to the model's training
    /// distribution, if the model monitors it. Higher means further out of
    /// distribution; `None` means "not monitored". Read by the engine at
    /// the end of a run and exposed per cluster in
    /// [`crate::instrument::Metrics::cluster_drift`].
    fn drift(&self) -> Option<f64> {
        None
    }

    /// Serialize the model's mutable state (RNG streams, feeder cursors,
    /// recurrent hidden state, …) for a checkpoint. Immutable weights are
    /// *not* written; a restore re-creates the model from its bundle and
    /// then calls [`ClusterModel::load_state`]. The default refuses, so
    /// only opted-in models participate in checkpointed runs.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this ClusterModel implementation",
        ))
    }

    /// Overwrite the model's mutable state from a checkpoint produced by
    /// [`ClusterModel::save_state`] on an identically-configured model.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this ClusterModel implementation",
        ))
    }
}

/// One boundary packet queued for batched inference: everything a
/// [`BatchClusterModel`] needs to replay the crossing later, in order.
#[derive(Clone, Debug)]
pub struct BoundaryItem {
    /// The mimic'ed cluster the packet is crossing into/out of.
    pub cluster: u32,
    /// Crossing direction.
    pub dir: BoundaryDir,
    /// The packet itself (all-scalar; cloning does not allocate).
    pub pkt: Packet,
    /// Simulated time the packet hit the boundary. Feature extraction and
    /// re-injection both use this, not the flush time, so verdicts are
    /// independent of *when* the engine decides to flush.
    pub enqueued_at: SimTime,
}

/// A model serving *all* mimic'ed clusters of a simulation at once, so
/// boundary packets queued across an event window can be predicted in one
/// batched forward pass (the per-wakeup aggregation point of the PDES
/// compose mode).
///
/// Contract with the engine:
///
/// * `items` passed to [`BatchClusterModel::infer_batch`] arrive in
///   enqueue order (ties broken by the engine's deterministic event
///   order), and the verdict for each item must depend only on the items
///   at and before it — never on how the engine chunked the stream into
///   flushes. This is what makes sequential and partitioned composed runs
///   bit-identical.
/// * Predicted latencies must be at least [`BatchClusterModel::latency_floor`],
///   the engine's license to delay inference: a flush scheduled before
///   `oldest_enqueue + floor` can only produce strictly-future events.
///
/// Implementations must be `Send`: when overlapped flushing is enabled
/// (see `Simulation::set_batch_overlap`) the engine ships the boxed model
/// to a helper thread and back between flushes. The model is only ever
/// *used* by one thread at a time, so no `Sync` is required.
pub trait BatchClusterModel: Send {
    /// The cluster indices this model serves.
    fn clusters(&self) -> &[u32];

    /// Predict every queued item, appending one [`Verdict`] per item (in
    /// order) to `verdicts`. The engine clears `verdicts` beforehand and
    /// reuses the buffer across flushes.
    fn infer_batch(&mut self, items: &[BoundaryItem], verdicts: &mut Vec<Verdict>);

    /// Lower bound on every predicted latency (> 0). The engine may hold
    /// an item back for inference up to this long after its enqueue time.
    fn latency_floor(&self) -> SimDuration;

    /// When `cluster` next wants a feeder wakeup, if ever.
    fn next_wake(&mut self, cluster: u32, now: SimTime) -> Option<SimTime> {
        let _ = (cluster, now);
        None
    }

    /// A requested wakeup fired for `cluster`.
    fn on_wake(&mut self, cluster: u32, now: SimTime) {
        let _ = (cluster, now);
    }

    /// Drift score for `cluster` (see [`ClusterModel::drift`]).
    fn drift(&self, cluster: u32) -> Option<f64> {
        let _ = cluster;
        None
    }

    /// Contribute model-side telemetry (lane-occupancy histograms, packet
    /// counters, …) to the engine's observability report at fold time.
    /// Called once per run, only when obs is enabled; the default adds
    /// nothing.
    fn append_obs(&self, out: &mut dcn_obs::ObsReport) {
        let _ = out;
    }

    /// Serialize mutable state for a checkpoint; see
    /// [`ClusterModel::save_state`] for the contract. Must only be called
    /// with no batch in flight (the engine settles first).
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this BatchClusterModel implementation",
        ))
    }

    /// Overwrite mutable state from a checkpoint; see
    /// [`ClusterModel::load_state`].
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "this BatchClusterModel implementation",
        ))
    }
}

/// A reference model with constant latency and Bernoulli drops. Useful for
/// engine tests and as a degenerate baseline ("what if the Mimic learned
/// only averages?").
pub struct ConstModel {
    /// Latency applied to every surviving packet.
    pub latency: SimDuration,
    /// Independent drop probability.
    pub drop_prob: f64,
    rng: crate::rng::SplitMix64,
}

impl ConstModel {
    pub fn new(latency: SimDuration, drop_prob: f64, seed: u64) -> ConstModel {
        ConstModel {
            latency,
            drop_prob,
            rng: crate::rng::SplitMix64::derive(seed, 0x6100),
        }
    }
}

impl ClusterModel for ConstModel {
    fn on_packet(&mut self, _dir: BoundaryDir, _pkt: &Packet, _now: SimTime) -> Verdict {
        if self.drop_prob > 0.0 && self.rng.bernoulli(self.drop_prob) {
            Verdict::Drop
        } else {
            Verdict::Deliver {
                latency: self.latency,
                mark_ce: false,
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.rng.state());
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.get_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::topology::NodeId;

    fn pkt() -> Packet {
        Packet::data(1, FlowId(1), NodeId(0), NodeId(9), 0, 1000, false, SimTime::ZERO)
    }

    #[test]
    fn const_model_fixed_latency() {
        let mut m = ConstModel::new(SimDuration::from_micros(300), 0.0, 1);
        match m.on_packet(BoundaryDir::Egress, &pkt(), SimTime::ZERO) {
            Verdict::Deliver { latency, mark_ce } => {
                assert_eq!(latency, SimDuration::from_micros(300));
                assert!(!mark_ce);
            }
            Verdict::Drop => panic!("should not drop"),
        }
    }

    #[test]
    fn const_model_drop_rate() {
        let mut m = ConstModel::new(SimDuration::ZERO, 0.25, 42);
        let n = 10_000;
        let drops = (0..n)
            .filter(|_| {
                matches!(
                    m.on_packet(BoundaryDir::Ingress, &pkt(), SimTime::ZERO),
                    Verdict::Drop
                )
            })
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn default_model_never_wakes() {
        let mut m = ConstModel::new(SimDuration::ZERO, 0.0, 1);
        assert!(m.next_wake(SimTime::ZERO).is_none());
    }
}
