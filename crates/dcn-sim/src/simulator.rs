//! The simulation engine.
//!
//! [`Simulation`] owns the entire network state (links, hosts, metrics),
//! drains the event queue, and dispatches each event to the component
//! logic in the sibling modules. It supports three execution shapes:
//!
//! * **Full fidelity** — every cluster's switches are simulated; this is
//!   the ground truth the paper evaluates against.
//! * **Mimic composition** — clusters replaced by [`ClusterModel`]s via
//!   [`Simulation::set_cluster_model`]; packets crossing their boundaries
//!   take the learned path instead of the queue/switch path (§7.1).
//! * **Partitioned** — the same engine restricted to a subset of nodes,
//!   exporting cross-partition packet arrivals; the [`crate::pdes`] driver
//!   composes several of these into a conservative parallel simulation.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultChange, FaultPlan};
use crate::host::{HostState, Role};
use crate::instrument::{BoundaryPhase, BoundaryRecord, FlowRecord, Metrics, RttSample};
use crate::link::{Dir, DuplexLink, LinkSpec};
use crate::mimic::{
    BatchClusterModel, BoundaryDir, BoundaryItem, ClusterModel, TierSwitch, Verdict,
};
use crate::packet::{Ecn, FlowId, Packet, PacketKind};
use crate::routing::Router;
use crate::switch::process_hop;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, LinkId, NodeId, NodeKind};
use crate::traffic::TrafficGen;
use crate::transport::{Actions, FlowSpec, Transport, TransportCtx, TransportFactory};
use std::collections::HashSet;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Registry names for per-event-kind counters, indexed by
/// [`EventKind::index`]. Kept as flat constants so the dispatch loop uses
/// fixed arrays and naming happens once, at fold time.
const EVENT_COUNT_NAMES: [&str; EventKind::COUNT] = [
    "sim.events.fault",
    "sim.events.tx_done",
    "sim.events.arrive",
    "sim.events.timer",
    "sim.events.flow_arrival",
    "sim.events.feeder_wake",
];
const EVENT_WALL_NAMES: [&str; EventKind::COUNT] = [
    "sim.events.fault.wall_ns",
    "sim.events.tx_done.wall_ns",
    "sim.events.arrive.wall_ns",
    "sim.events.timer.wall_ns",
    "sim.events.flow_arrival.wall_ns",
    "sim.events.feeder_wake.wall_ns",
];

/// Engine-side observability accumulators ([`Simulation::enable_obs`]).
/// The event loop touches only the fixed arrays (no map lookups); names
/// are attached once when the run folds into `Metrics::obs`. Boxed behind
/// an `Option` so the obs-off hot path pays a single branch.
struct EngineObs {
    /// When false (light mode, [`Simulation::enable_obs_light`]), the
    /// event loop skips the two per-event `Instant::now()` calls and
    /// `event_wall_ns` stays zero; counters and digests still record.
    time_events: bool,
    event_count: [u64; EventKind::COUNT],
    event_wall_ns: [u64; EventKind::COUNT],
    /// Batched-flush sizes (items per `flush_batch` that did work).
    flush_batch: dcn_obs::Hist,
    flush_wall_ns: u64,
    flushes: u64,
    windows: u64,
    /// Overlapped-flush accounting: batches shipped to the helper thread,
    /// and how often (and for how long) the event thread had to wait for
    /// one at the inference deadline instead of finding it already done.
    overlap_dispatches: u64,
    overlap_stalls: u64,
    overlap_stall_wall_ns: u64,
    overlap_stall_hist: dcn_obs::Hist,
    obs: dcn_obs::Obs,
}

/// Per-window state-digest recorder ([`Simulation::enable_digests`],
/// DESIGN.md §14). Holds this LP's share of the digest timeline; the
/// shares merge element-wise with `wrapping_add` in
/// [`dcn_obs::ObsReport::merge`], which is what makes the merged timeline
/// partition-count-invariant.
struct DigestRec {
    /// This LP's per-window digests, in recording order.
    windows: Vec<u64>,
    /// Absolute barrier-window index of `windows[0]` (non-zero for runs
    /// resumed from a checkpoint); `digest.first_window` in the report.
    first_window: u64,
    /// Scratch encoder reused across items so steady-state digest
    /// computation allocates nothing.
    scratch: crate::snapshot::SnapWriter,
}

/// How one cluster is executed.
pub enum ClusterMode {
    /// Simulate all switches and queues.
    Full,
    /// Replace internals with a model. `ingress`/`egress` select which
    /// directions the model handles (both for a real Mimic; one for the
    /// paper's Appendix B hybrid debug clusters).
    Mimic {
        model: Box<dyn ClusterModel>,
        ingress: bool,
        egress: bool,
    },
    /// Served (both directions) by the simulation's shared
    /// [`BatchClusterModel`]: boundary packets are queued and predicted in
    /// batched flushes instead of per-packet scalar calls. Installed via
    /// [`Simulation::set_batch_model`].
    Batched,
}

impl ClusterMode {
    fn models_ingress(&self) -> bool {
        matches!(
            self,
            ClusterMode::Mimic { ingress: true, .. } | ClusterMode::Batched
        )
    }
    fn models_egress(&self) -> bool {
        matches!(
            self,
            ClusterMode::Mimic { egress: true, .. } | ClusterMode::Batched
        )
    }
    /// Does this cluster still generate its own full workload?
    /// Full and hybrid (partially modeled) clusters do; full Mimics do not.
    fn full_fidelity_traffic(&self) -> bool {
        match self {
            ClusterMode::Full => true,
            ClusterMode::Mimic {
                ingress, egress, ..
            } => !(*ingress && *egress),
            ClusterMode::Batched => false,
        }
    }
}

/// Runtime of the shared batched model: the aggregation point where
/// boundary packets wait for a batched inference flush.
struct BatchRuntime {
    /// The model, while it is in the engine's hands; `None` exactly while
    /// an overlapped flush is inflight on the helper thread (the model
    /// travels with the job, so no locking is ever needed).
    model: Option<Box<dyn BatchClusterModel>>,
    /// Queued boundary crossings, in enqueue order.
    pending: Vec<BoundaryItem>,
    /// Verdict buffer reused across flushes (zero steady-state allocations).
    verdicts: Vec<Verdict>,
    /// Inference deadline: the engine settles inference before processing
    /// any event at or past `oldest_outstanding_enqueue + horizon`, where
    /// `horizon` is the model's latency floor. Because every verdict's
    /// latency is at least the floor, flushing inside the deadline can
    /// only produce strictly-future re-injections.
    horizon: SimDuration,
    /// Double-buffered helper-thread state ([`Simulation::set_batch_overlap`]);
    /// `None` keeps every flush synchronous on the event thread.
    overlap: Option<OverlapState>,
}

/// One overlapped flush in flight: the model plus the item/verdict buffers
/// travel to the helper thread and back, so exactly one thread ever holds
/// the model and the buffers keep their capacity across round trips.
struct OverlapJob {
    model: Box<dyn BatchClusterModel>,
    items: Vec<BoundaryItem>,
    verdicts: Vec<Verdict>,
}

/// The double-buffered flush helper: a persistent thread running
/// `infer_batch` on the previous chunk of boundary items while the event
/// thread keeps processing the current window's non-boundary events.
/// Verdicts are re-injected at `enqueued_at + latency` — flush timing is
/// invisible to the trajectory (DESIGN.md §8), which is what makes the
/// overlapped path bit-identical to the synchronous one.
struct OverlapState {
    /// `Option` only so `Drop` can hang up before joining.
    to_worker: Option<mpsc::Sender<OverlapJob>>,
    from_worker: mpsc::Receiver<OverlapJob>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Enqueue time of the oldest item in the inflight job (`None` when
    /// the helper is idle). The deadline check in `run_window` keys off
    /// this: the engine blocks on the helper before processing any event
    /// at or past `inflight_oldest + horizon`.
    inflight_oldest: Option<SimTime>,
    /// Returned buffers, reused for the next dispatch.
    spare_items: Vec<BoundaryItem>,
    spare_verdicts: Vec<Verdict>,
}

impl OverlapState {
    fn spawn() -> OverlapState {
        let (to_tx, to_rx) = mpsc::channel::<OverlapJob>();
        let (back_tx, back_rx) = mpsc::channel::<OverlapJob>();
        let handle = std::thread::Builder::new()
            .name("mimic-overlap".into())
            .spawn(move || {
                while let Ok(mut job) = to_rx.recv() {
                    job.verdicts.clear();
                    job.model.infer_batch(&job.items, &mut job.verdicts);
                    if back_tx.send(job).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn overlap helper thread");
        OverlapState {
            to_worker: Some(to_tx),
            from_worker: back_rx,
            handle: Some(handle),
            inflight_oldest: None,
            spare_items: Vec::new(),
            spare_verdicts: Vec::new(),
        }
    }
}

impl Drop for OverlapState {
    fn drop(&mut self) {
        // Hang up first so the helper's recv loop exits, then join. A job
        // still inflight at teardown is completed and discarded.
        self.to_worker.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The discrete-event simulation engine.
pub struct Simulation {
    cfg: SimConfig,
    topo: FatTree,
    router: Router,
    queue: EventQueue,
    now: SimTime,
    end: SimTime,
    links: Vec<DuplexLink>,
    hosts: Vec<HostState>,
    /// Flows a host has finished with (for TIME_WAIT-style re-acking).
    done: Vec<HashSet<FlowId>>,
    cluster_modes: Vec<ClusterMode>,
    traffic: TrafficGen,
    factory: Box<dyn TransportFactory>,
    metrics: Metrics,
    trace_cluster: Option<u32>,
    scratch: Actions,
    /// Spare endpoint boxes recycled across completed flows, indexed by
    /// [`Role`] (`[sender, receiver]`). Never snapshotted: a recycled
    /// endpoint is reset to factory-fresh state, so the pool's contents are
    /// interchangeable with fresh allocations.
    spares: [Vec<Box<dyn Transport>>; 2],
    /// Per-role pooling enable; flipped off permanently the first time a
    /// transport's [`Transport::reset`] opts out.
    pool_endpoints: [bool; 2],
    initialized: bool,
    /// Per-(link, dir) fault streams; `None` when loss injection is off.
    fault: Option<Vec<[crate::rng::SplitMix64; 2]>>,
    /// Compiled fault schedule, indexed by [`EventKind::Fault`] events.
    fault_schedule: Option<Vec<FaultAction>>,
    /// Shared batched-inference runtime for [`ClusterMode::Batched`]
    /// clusters; `None` when no batched model is installed.
    batch: Option<BatchRuntime>,
    /// Observability accumulators; `None` (the default) is the no-op
    /// recorder and costs one branch per event.
    obs: Option<Box<EngineObs>>,
    /// Per-window state-digest recorder; `None` (the default) records
    /// nothing and costs nothing — digests are computed only when the
    /// PDES driver calls [`Simulation::record_window_digest`].
    digests: Option<Box<DigestRec>>,
    /// Flight recorder ring; `None` (the default) costs one branch per
    /// event, same discipline as `obs`.
    flight: Option<Box<dcn_obs::FlightRecorder>>,
    // --- partitioning (None = own everything) ---
    owner_of_node: Option<Arc<Vec<u8>>>,
    my_partition: u8,
    outbox: Vec<(SimTime, NodeId, Packet)>,
}

impl Simulation {
    /// Build an engine with the default (testing) transport. Use
    /// [`Simulation::with_transport`] for real protocols.
    pub fn new(cfg: SimConfig) -> Simulation {
        Simulation::with_transport(
            cfg,
            Box::new(crate::transport::testing::FixedWindowFactory::default()),
        )
    }

    /// Build an engine running the given transport protocol.
    pub fn with_transport(cfg: SimConfig, factory: Box<dyn TransportFactory>) -> Simulation {
        let topo = FatTree::new(cfg.topo);
        let router = Router::new(topo.clone());
        let qc = cfg.queue.to_queue_config();
        let mut links = Vec::with_capacity(cfg.topo.num_links() as usize);
        for l in 0..cfg.topo.num_links() {
            let l = LinkId(l);
            let bw = if topo.is_host_link(l) {
                cfg.link.host_bw_bps
            } else {
                cfg.link.fabric_bw_bps
            };
            links.push(DuplexLink::new(
                LinkSpec {
                    bandwidth_bps: bw,
                    latency: cfg.link.latency,
                },
                qc,
                qc,
            ));
        }
        let hosts = (0..cfg.topo.num_hosts())
            .map(|h| HostState::new(NodeId(h)))
            .collect();
        let traffic = TrafficGen::new(topo.clone(), cfg.traffic, cfg.link.host_bw_bps, cfg.seed);
        let cluster_modes = (0..cfg.topo.clusters).map(|_| ClusterMode::Full).collect();
        let mut metrics = Metrics::new(cfg.topo.num_hosts());
        metrics.enable_queue_stats(cfg.topo.num_links());
        let fault = (cfg.link.loss_prob > 0.0).then(|| {
            (0..cfg.topo.num_links())
                .map(|l| {
                    [
                        crate::rng::SplitMix64::derive(cfg.seed, 0xFA00_0000 | (l as u64) << 1),
                        crate::rng::SplitMix64::derive(
                            cfg.seed,
                            0xFA00_0000 | ((l as u64) << 1 | 1),
                        ),
                    ]
                })
                .collect()
        });
        Simulation {
            fault,
            fault_schedule: None,
            batch: None,
            obs: None,
            digests: None,
            flight: None,
            end: SimTime::from_secs_f64(cfg.duration_s),
            metrics,
            done: vec![HashSet::new(); cfg.topo.num_hosts() as usize],
            cfg,
            topo,
            router,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            links,
            hosts,
            cluster_modes,
            traffic,
            factory,
            trace_cluster: None,
            scratch: Actions::default(),
            spares: [Vec::new(), Vec::new()],
            pool_endpoints: [true, true],
            initialized: false,
            owner_of_node: None,
            my_partition: 0,
            outbox: Vec::new(),
        }
    }

    /// Record the boundary trace of `cluster` (the paper's §5.1
    /// instrumentation of one full-fidelity cluster).
    pub fn trace_cluster(&mut self, cluster: u32) {
        assert!(cluster < self.cfg.topo.clusters);
        self.trace_cluster = Some(cluster);
    }

    /// Replace `cluster`'s internals with a model for both directions.
    pub fn set_cluster_model(&mut self, cluster: u32, model: Box<dyn ClusterModel>) {
        self.set_cluster_model_dirs(cluster, model, true, true);
    }

    /// Replace `cluster`'s internals for selected directions only (hybrid
    /// testing clusters, paper Appendix B).
    pub fn set_cluster_model_dirs(
        &mut self,
        cluster: u32,
        model: Box<dyn ClusterModel>,
        ingress: bool,
        egress: bool,
    ) {
        assert!(cluster < self.cfg.topo.clusters);
        assert!(!self.initialized, "cannot add models after the run started");
        self.cluster_modes[cluster as usize] = ClusterMode::Mimic {
            model,
            ingress,
            egress,
        };
    }

    /// Replace every cluster in `model.clusters()` with the shared batched
    /// model. Their boundary packets are queued during event processing
    /// and predicted together in batched flushes; verdicts are re-injected
    /// as future arrivals timed from each packet's *enqueue* time, so the
    /// trajectory is independent of when the engine flushes.
    ///
    /// At most one batched model per simulation; clusters it serves must
    /// not already carry a scalar [`ClusterModel`].
    pub fn set_batch_model(&mut self, model: Box<dyn BatchClusterModel>) {
        assert!(!self.initialized, "cannot add models after the run started");
        assert!(self.batch.is_none(), "batched model already installed");
        let horizon = model.latency_floor();
        assert!(
            horizon > SimDuration::ZERO,
            "batched model must declare a positive latency floor"
        );
        for &c in model.clusters() {
            assert!(c < self.cfg.topo.clusters, "cluster {c} out of range");
            assert!(
                matches!(self.cluster_modes[c as usize], ClusterMode::Full),
                "cluster {c} already modeled"
            );
            self.cluster_modes[c as usize] = ClusterMode::Batched;
        }
        self.batch = Some(BatchRuntime {
            model: Some(model),
            pending: Vec::new(),
            verdicts: Vec::new(),
            horizon,
            overlap: None,
        });
    }

    /// Run batched flushes on a helper thread instead of the event thread
    /// (double buffering: the helper infers the previous chunk of boundary
    /// items while the engine processes the current window's non-boundary
    /// events). The trajectory is bit-identical to synchronous flushing —
    /// verdicts are chunking-invariant and re-injection times depend only
    /// on enqueue times — so this is purely a wall-clock optimization.
    ///
    /// Requires a batched model ([`Simulation::set_batch_model`]); must be
    /// called before the run starts.
    pub fn set_batch_overlap(&mut self, enabled: bool) {
        assert!(!self.initialized, "cannot toggle overlap after the run started");
        let rt = self
            .batch
            .as_mut()
            .expect("install a batched model before enabling overlap");
        match (enabled, rt.overlap.is_some()) {
            (true, false) => rt.overlap = Some(OverlapState::spawn()),
            (false, true) => rt.overlap = None,
            _ => {}
        }
    }

    /// Is overlapped (off-thread) batched flushing enabled?
    pub fn batch_overlap_enabled(&self) -> bool {
        self.batch.as_ref().is_some_and(|rt| rt.overlap.is_some())
    }

    /// Swap the future event list for the reference `BinaryHeap`
    /// implementation (see [`crate::event::HeapEventQueue`]). Pop order and
    /// snapshot bytes are identical to the default pooled queue — this
    /// exists for equivalence tests and honest before/after benchmarking.
    /// Must be called before the run starts.
    pub fn use_reference_queue(&mut self) {
        assert!(
            !self.initialized,
            "cannot swap the event queue after the run started"
        );
        assert!(self.queue.is_empty(), "cannot swap a non-empty event queue");
        self.queue = EventQueue::new_reference();
    }

    /// Disable transport endpoint recycling so every flow allocates fresh
    /// boxes (the pre-pooling behavior). Trajectories are identical either
    /// way — [`Transport::reset`] guarantees a recycled endpoint is
    /// indistinguishable from a factory-fresh one — so this, too, exists
    /// for equivalence tests and benchmarking.
    pub fn disable_endpoint_pooling(&mut self) {
        self.pool_endpoints = [false, false];
        self.spares = [Vec::new(), Vec::new()];
    }

    /// Cap on spare endpoints kept per role. Completion and arrival rates
    /// track each other at steady state, so the pool stays near the
    /// high-water mark of concurrently-active flows; the cap only guards
    /// against pathological burst-then-idle schedules pinning memory.
    const SPARE_CAP: usize = 4096;

    /// Get an endpoint for `spec`, recycling a spare box when pooling is on.
    fn acquire_endpoint(&mut self, role: Role, spec: &FlowSpec) -> Box<dyn Transport> {
        let r = role as usize;
        if self.pool_endpoints[r] {
            if let Some(mut b) = self.spares[r].pop() {
                if b.reset(spec) {
                    return b;
                }
                // This transport type opted out of recycling: stop pooling
                // the role for good (factories are homogeneous per run, so
                // one refusal means they would all refuse).
                self.pool_endpoints[r] = false;
                self.spares[r] = Vec::new();
            }
        }
        match role {
            Role::Sender => self.factory.sender(spec),
            Role::Receiver => self.factory.receiver(spec),
        }
    }

    /// Return a completed flow's endpoint box to the role's spare pool.
    fn recycle_endpoint(&mut self, ep: crate::host::Endpoint) {
        let r = ep.role as usize;
        if self.pool_endpoints[r] && self.spares[r].len() < Self::SPARE_CAP {
            self.spares[r].push(ep.transport);
        }
    }

    /// Install a seeded [`FaultPlan`]. The plan is validated and compiled
    /// against this simulation's topology and duration; its actions are
    /// driven through the event queue as [`EventKind::Fault`] events.
    ///
    /// Must be called before the run starts. An empty plan is a no-op and
    /// leaves the trajectory bit-identical to a plan-free run.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        if self.initialized {
            return Err(SimError::AlreadyStarted {
                what: "installing a fault plan",
            });
        }
        let schedule = plan.compile(&self.topo, self.end)?;
        if plan.is_empty() {
            return Ok(());
        }
        // Gray failures need per-(link, dir) loss streams even when the
        // configured baseline loss is zero. Draws stay gated on a positive
        // effective loss rate, so merely building the streams does not
        // perturb a fault-free trajectory.
        if self.fault.is_none() {
            let seed = self.cfg.seed;
            self.fault = Some(
                (0..self.cfg.topo.num_links())
                    .map(|l| {
                        [
                            crate::rng::SplitMix64::derive(seed, 0xFA00_0000 | (l as u64) << 1),
                            crate::rng::SplitMix64::derive(seed, 0xFA00_0000 | ((l as u64) << 1 | 1)),
                        ]
                    })
                    .collect(),
            );
        }
        self.fault_schedule = Some(schedule);
        Ok(())
    }

    /// Restrict this engine to the nodes mapped to `mine` in `owner`;
    /// arrivals at foreign nodes are exported instead of processed. Used by
    /// the PDES driver.
    pub fn set_partition(&mut self, owner: Arc<Vec<u8>>, mine: u8) {
        assert_eq!(owner.len(), self.cfg.topo.num_nodes() as usize);
        assert!(!self.initialized);
        self.owner_of_node = Some(owner);
        self.my_partition = mine;
        if let Some(eo) = self.obs.as_mut() {
            eo.obs.set_track(mine as u32);
        }
    }

    /// Turn on observability for this engine: per-event-kind counts and
    /// wall time, window spans with sim-time attribution, batched-flush
    /// histograms. The report is folded into `Metrics::obs` when metrics
    /// are taken. Recording is wall-clock only — the simulated trajectory
    /// is bit-identical with obs on or off.
    pub fn enable_obs(&mut self) {
        self.enable_obs_with_timing(true);
    }

    /// Light observability: counters, histograms, gauges, and digest
    /// export all work, but the event loop skips its two per-event
    /// `Instant::now()` calls so `event_wall_ns`/`flush_wall_ns` stay
    /// zero. Per-window digests ride on this mode when full obs was not
    /// requested: wall-clock timing costs tens of percent on short-event
    /// workloads, while counter upkeep is a few nanoseconds per event.
    /// Calling [`Simulation::enable_obs`] afterwards upgrades timing in
    /// place without discarding anything already recorded.
    pub fn enable_obs_light(&mut self) {
        self.enable_obs_with_timing(false);
    }

    fn enable_obs_with_timing(&mut self, time_events: bool) {
        if let Some(eo) = self.obs.as_mut() {
            // Already on: upgrade to timing if either caller wants it.
            eo.time_events |= time_events;
            return;
        }
        let mut obs = dcn_obs::Obs::on();
        obs.set_track(self.my_partition as u32);
        self.obs = Some(Box::new(EngineObs {
            time_events,
            event_count: [0; EventKind::COUNT],
            event_wall_ns: [0; EventKind::COUNT],
            flush_batch: dcn_obs::Hist::default(),
            flush_wall_ns: 0,
            flushes: 0,
            windows: 0,
            overlap_dispatches: 0,
            overlap_stalls: 0,
            overlap_stall_wall_ns: 0,
            overlap_stall_hist: dcn_obs::Hist::default(),
            obs,
        }));
    }

    /// Is the engine recording observability data?
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Is obs recording wall-clock timings (full mode), as opposed to the
    /// counters-only light mode of [`Simulation::enable_obs_light`]?
    /// Drivers use this to skip their own per-window clock reads.
    pub fn obs_timing_enabled(&self) -> bool {
        self.obs.as_deref().is_some_and(|eo| eo.time_events)
    }

    /// Add to a registry counter (no-op with obs off). Used by drivers
    /// sitting above the engine, e.g. the PDES loop's barrier accounting.
    pub fn obs_counter_add(&mut self, name: &'static str, v: u64) {
        if let Some(eo) = self.obs.as_mut() {
            eo.obs.counter_add(name, v);
        }
    }

    /// Open a driver-level span on the engine's recorder (no-op when obs
    /// is off). Used by the PDES driver to wrap a whole LP loop so the
    /// trace timeline has no coverage gaps at barrier waits.
    pub fn obs_span_begin(&mut self, name: &'static str, cat: &'static str) {
        if let Some(eo) = self.obs.as_mut() {
            eo.obs.begin(name, cat, None);
        }
    }

    /// Close the innermost driver-level span (no-op when obs is off).
    pub fn obs_span_end(&mut self) {
        if let Some(eo) = self.obs.as_mut() {
            eo.obs.end(None);
        }
    }

    /// Set a registry gauge (no-op with obs off). Used by drivers to
    /// record run-level facts like the barrier window size or the tier
    /// plan's epoch count.
    pub fn obs_gauge_set(&mut self, name: impl Into<String>, v: f64) {
        if let Some(eo) = self.obs.as_mut() {
            eo.obs.gauge_set(name, v);
        }
    }

    /// Turn on per-window state digests (DESIGN.md §14). The digest
    /// itself is computed only when the driver calls
    /// [`Simulation::record_window_digest`] at a barrier; event
    /// processing carries no digest code at all, so the trajectory is
    /// bit-identical with digests on or off.
    pub fn enable_digests(&mut self) {
        self.digests = Some(Box::new(DigestRec {
            windows: Vec::new(),
            first_window: 0,
            scratch: crate::snapshot::SnapWriter::new(),
        }));
    }

    /// Is the engine recording per-window state digests?
    pub fn digests_enabled(&self) -> bool {
        self.digests.is_some()
    }

    /// Turn on the flight recorder with room for the last `capacity`
    /// events (DESIGN.md §14). Recording is one ring store per popped
    /// event; the trajectory is bit-identical with the recorder on or
    /// off.
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.flight = Some(Box::new(dcn_obs::FlightRecorder::new(capacity)));
    }

    /// Is the flight recorder on?
    pub fn flight_enabled(&self) -> bool {
        self.flight.is_some()
    }

    /// The retained flight-recorder events in recording order, without
    /// draining (empty when the recorder is off). Post-mortem dumps use
    /// this so a dump never perturbs the report folded at run end.
    pub fn flight_snapshot(&self) -> Vec<dcn_obs::FlightEvent> {
        self.flight
            .as_ref()
            .map(|fr| fr.snapshot_ordered())
            .unwrap_or_default()
    }

    /// The recorded digest timeline as `(first_window, digests)`, or
    /// `None` until the first digest lands. Post-mortem dumps read this
    /// without disturbing the record.
    pub fn digest_timeline(&self) -> Option<(u64, &[u64])> {
        self.digests
            .as_ref()
            .filter(|rec| !rec.windows.is_empty())
            .map(|rec| (rec.first_window, rec.windows.as_slice()))
    }

    /// Record this LP's state digest for the barrier window `window`
    /// (absolute index — a resumed run passes the index it restarted at).
    /// No-op unless [`Simulation::enable_digests`] was called.
    pub fn record_window_digest(&mut self, window: u64) {
        if self.digests.is_none() {
            return;
        }
        let digest = self.window_digest();
        let rec = self.digests.as_mut().expect("checked above");
        if rec.windows.is_empty() {
            rec.first_window = window;
        }
        rec.windows.push(digest);
    }

    /// This LP's share of the partition-invariant state digest
    /// (DESIGN.md §14): a commutative (`wrapping_add`) combination of
    /// per-item FNV-1a digests over every piece of deterministic state
    /// this LP *owns* —
    ///
    /// * queued future events (time + payload through the snapshot codec;
    ///   the `seq` tiebreak is excluded because it depends on scheduling
    ///   history, and replicated fault-schedule events count only on
    ///   partition 0);
    /// * per-direction transmitter state (busy flag + port queue) and
    ///   gray-loss RNG streams, attributed to the LP owning the
    ///   transmitting node; link health attributed to the lower end's
    ///   owner;
    /// * per-host state for owned hosts: id counter, live flows (spec +
    ///   transport state), finished-flow set, and traffic-generator
    ///   stream position.
    ///
    /// Model state (Mimic weights, fleet lanes, tier ledgers) and metrics
    /// are deliberately excluded: models advance only on their owning LP
    /// and any model-state divergence surfaces through the events it
    /// re-injects within a window. Summing every LP's share equals the
    /// sequential run's digest at the same barrier — asserted at 1/2/4
    /// partitions by the integration suite.
    pub fn window_digest(&mut self) -> u64 {
        use dcn_obs::digest::Fnv64;
        let mut rec = self.digests.take().unwrap_or_else(|| {
            Box::new(DigestRec {
                windows: Vec::new(),
                first_window: 0,
                scratch: crate::snapshot::SnapWriter::new(),
            })
        });
        let scratch = &mut rec.scratch;
        let mut acc = 0u64;
        // Queued events. Domain tags keep items from different state
        // families from colliding.
        let part0 = self.my_partition == 0;
        self.queue.for_each_live(|time, kind| {
            if matches!(kind, EventKind::Fault { .. }) && !part0 {
                return;
            }
            scratch.clear();
            scratch.put_u8(0xE1);
            scratch.put_u64(time.as_nanos());
            kind.encode_for_digest(scratch);
            let mut h = Fnv64::new();
            h.write_bytes(scratch.as_bytes());
            acc = acc.wrapping_add(h.finish());
        });
        // Links: health once (lower end's owner), transmitter + gray-loss
        // stream per direction (transmitting node's owner).
        for (l, link) in self.links.iter().enumerate() {
            let lid = LinkId(l as u32);
            let (lo, hi) = self.topo.link_ends(lid);
            if self.owned(lo) {
                scratch.clear();
                scratch.put_u8(0xA1);
                scratch.put_u32(lid.0);
                scratch.put_bool(link.health.up);
                scratch.put_f64(link.health.extra_loss);
                scratch.put_f64(link.health.rate_factor);
                let mut h = Fnv64::new();
                h.write_bytes(scratch.as_bytes());
                acc = acc.wrapping_add(h.finish());
            }
            for dir in [Dir::Up, Dir::Down] {
                let tx_node = match dir {
                    Dir::Up => lo,
                    Dir::Down => hi,
                };
                if !self.owned(tx_node) {
                    continue;
                }
                let tx = link.tx(dir);
                scratch.clear();
                scratch.put_u8(0xA2);
                scratch.put_u32(lid.0);
                scratch.put_u8(dir.index() as u8);
                scratch.put_bool(tx.busy);
                tx.queue.save_state(scratch);
                if let Some(streams) = &self.fault {
                    scratch.put_u64(streams[l][dir.index()].state());
                }
                let mut h = Fnv64::new();
                h.write_bytes(scratch.as_bytes());
                acc = acc.wrapping_add(h.finish());
            }
        }
        // Hosts: endpoint + traffic + done state for owned hosts.
        for (hidx, host) in self.hosts.iter().enumerate() {
            let node = NodeId(hidx as u32);
            if !self.owned(node) {
                continue;
            }
            scratch.clear();
            scratch.put_u8(0xA3);
            scratch.put_u32(node.0);
            scratch.put_u64(host.ids.counter());
            let mut flows: Vec<&FlowId> = host.flows.keys().collect();
            flows.sort();
            scratch.put_u64(flows.len() as u64);
            for flow in flows {
                let ep = &host.flows[flow];
                scratch.put_u64(flow.0);
                scratch.put_u8(match ep.role {
                    Role::Sender => 0,
                    Role::Receiver => 1,
                });
                scratch.put_u64(ep.spec.id.0);
                scratch.put_u32(ep.spec.src.0);
                scratch.put_u32(ep.spec.dst.0);
                scratch.put_u64(ep.spec.size_bytes);
                scratch.put_u64(ep.spec.start.as_nanos());
                if ep.transport.save_state(scratch).is_err() {
                    // A transport without snapshot support digests as a
                    // fixed marker — still deterministic and owned by
                    // exactly one LP.
                    scratch.put_u64(0xDEAD_BEEF_0BAD_F00D);
                }
            }
            let mut done: Vec<u64> = self.done[hidx].iter().map(|f| f.0).collect();
            done.sort_unstable();
            scratch.put_u64(done.len() as u64);
            for id in done {
                scratch.put_u64(id);
            }
            let (rng_state, flow_counter) = self.traffic.host_state(node);
            scratch.put_u64(rng_state);
            scratch.put_u64(flow_counter);
            let mut h = Fnv64::new();
            h.write_bytes(scratch.as_bytes());
            acc = acc.wrapping_add(h.finish());
        }
        self.digests = Some(rec);
        acc
    }

    /// The topology being simulated.
    pub fn topo(&self) -> &FatTree {
        &self.topo
    }

    /// The router (exposed for feature extraction: "core switch traversed"
    /// is a deterministic function of the flow).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Configured end of the run.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Total events scheduled so far (for events/second reporting).
    pub fn events_scheduled(&self) -> u64 {
        self.queue.total_scheduled()
    }

    /// Read metrics mid-run.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn owned(&self, node: NodeId) -> bool {
        match &self.owner_of_node {
            None => true,
            Some(owner) => owner[node.0 as usize] == self.my_partition,
        }
    }

    fn init_schedule(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        if let Some(schedule) = &self.fault_schedule {
            for (i, action) in schedule.iter().enumerate() {
                self.queue
                    .schedule(action.time, EventKind::Fault { index: i as u32 });
            }
        }
        for h in 0..self.cfg.topo.num_hosts() {
            let host = NodeId(h);
            if !self.owned(host) {
                continue;
            }
            let t = self.traffic.first_arrival(host);
            if t <= self.end {
                self.queue.schedule(t, EventKind::FlowArrival { host });
            }
        }
        // Feeder wakeups for mimic'ed clusters we own (cluster ownership is
        // keyed off the cluster's first ToR).
        for c in 0..self.cfg.topo.clusters {
            let tor0 = self.topo.tor(c, 0);
            if !self.owned(tor0) {
                continue;
            }
            let wake = match &mut self.cluster_modes[c as usize] {
                ClusterMode::Mimic { model, .. } => model.next_wake(SimTime::ZERO),
                ClusterMode::Batched => self.batch.as_mut().and_then(|rt| {
                    rt.model
                        .as_mut()
                        .expect("model in hand before the run starts")
                        .next_wake(c, SimTime::ZERO)
                }),
                ClusterMode::Full => None,
            };
            if let Some(t) = wake {
                self.queue
                    .schedule(t, EventKind::FeederWake { cluster: c });
            }
        }
    }

    /// Run to the configured end and return all metrics.
    pub fn run(&mut self) -> Metrics {
        let end = self.end;
        let leftover = self.run_window(end + SimDuration::from_nanos(1));
        debug_assert!(
            leftover.is_empty(),
            "unpartitioned run exported remote events"
        );
        self.collect_cluster_drift();
        self.fold_obs();
        std::mem::replace(&mut self.metrics, Metrics::new(0))
    }

    /// Fold the engine-side observability accumulators into
    /// `self.metrics.obs` (registry naming happens here, once per run).
    /// No-op with obs off; consumes the recorder.
    fn fold_obs(&mut self) {
        let mut report = self.fold_engine_obs();
        // Digest timelines and flight-recorder drains ride in the obs
        // report even when span/counter recording is off — they are the
        // diverge tooling's inputs, and each costs nothing unless enabled.
        if let Some(rec) = self.digests.take() {
            let r = report.get_or_insert_with(Default::default);
            let slot = r.digests.entry("digest.window".to_string()).or_default();
            debug_assert!(slot.is_empty(), "digest timeline folded twice");
            *slot = rec.windows;
            r.gauges
                .insert("digest.first_window".to_string(), rec.first_window as f64);
        }
        if let Some(mut fr) = self.flight.take() {
            let r = report.get_or_insert_with(Default::default);
            *r.counters.entry("flight.recorded".to_string()).or_insert(0) +=
                fr.total_recorded();
            r.flight.extend(fr.drain_ordered());
        }
        let Some(report) = report else {
            return;
        };
        match &mut self.metrics.obs {
            Some(existing) => existing.merge(report),
            slot @ None => *slot = Some(Box::new(report)),
        }
    }

    /// The span/counter half of [`Simulation::fold_obs`]: `None` with obs
    /// off; consumes the recorder.
    fn fold_engine_obs(&mut self) -> Option<dcn_obs::ObsReport> {
        let mut eo = self.obs.take()?;
        for i in 0..EventKind::COUNT {
            if eo.event_count[i] > 0 {
                eo.obs.counter_add(EVENT_COUNT_NAMES[i], eo.event_count[i]);
                eo.obs.counter_add(EVENT_WALL_NAMES[i], eo.event_wall_ns[i]);
            }
        }
        eo.obs.counter_add("sim.windows", eo.windows);
        eo.obs
            .counter_add("sim.events.total", self.metrics.events_processed);
        if eo.flushes > 0 {
            eo.obs.counter_add("mimic.flush.count", eo.flushes);
            eo.obs.counter_add("mimic.flush.wall_ns", eo.flush_wall_ns);
            eo.obs.hist_merge("mimic.flush.batch_size", &eo.flush_batch);
        }
        if eo.overlap_dispatches > 0 {
            eo.obs
                .counter_add("mimic.flush.overlap_dispatches", eo.overlap_dispatches);
            eo.obs.counter_add("mimic.flush.overlap_stall", eo.overlap_stalls);
            eo.obs
                .counter_add("mimic.flush.overlap_stall_wall_ns", eo.overlap_stall_wall_ns);
            eo.obs
                .hist_merge("mimic.flush.overlap_stall_ns", &eo.overlap_stall_hist);
        }
        let (mut enq, mut drops, mut peak) = (0u64, 0u64, 0u64);
        for link in &self.links {
            for dir in [Dir::Up, Dir::Down] {
                let q = &link.tx(dir).queue;
                enq += q.enqueued;
                drops += q.dropped;
                peak = peak.max(q.peak_bytes);
            }
        }
        eo.obs.counter_add("sim.queue.enqueued", enq);
        eo.obs.counter_add("sim.queue.dropped", drops);
        eo.obs.gauge_set("sim.queue.peak_bytes", peak as f64);
        let mut report = eo.obs.take_report().unwrap_or_default();
        if let Some(rt) = &self.batch {
            rt.model
                .as_ref()
                .expect("batched model settled before metrics fold")
                .append_obs(&mut report);
        }
        for (c, drift) in self.metrics.cluster_drift.iter().enumerate() {
            if let Some(v) = drift {
                report.gauges.insert(format!("drift.cluster.{c}"), *v);
            }
        }
        // Adaptive-tier telemetry: the realized switch schedule as
        // parallel series, so `--report` can render the timeline and the
        // per-cluster time-in-tier summary. Only owned clusters are in
        // `tier_switches` (see `tier_epoch`), keeping the merged series
        // partition-invariant up to ordering.
        for s in &self.metrics.tier_switches {
            report
                .series
                .entry("tier.switch.epoch".to_string())
                .or_default()
                .push(s.epoch as f64);
            report
                .series
                .entry("tier.switch.cluster".to_string())
                .or_default()
                .push(s.cluster as f64);
            report
                .series
                .entry("tier.switch.from".to_string())
                .or_default()
                .push(s.from.index() as f64);
            report
                .series
                .entry("tier.switch.to".to_string())
                .or_default()
                .push(s.to.index() as f64);
        }
        Some(report)
    }

    /// Copy each Mimic'ed cluster's drift score (if monitored) into the
    /// metrics about to be handed out.
    fn collect_cluster_drift(&mut self) {
        let n = self.cluster_modes.len();
        if self.metrics.cluster_drift.len() < n {
            self.metrics.cluster_drift.resize(n, None);
        }
        for (c, mode) in self.cluster_modes.iter().enumerate() {
            match mode {
                ClusterMode::Mimic { model, .. } => {
                    self.metrics.cluster_drift[c] = model.drift();
                }
                ClusterMode::Batched => {
                    if let Some(rt) = &self.batch {
                        self.metrics.cluster_drift[c] = rt
                            .model
                            .as_ref()
                            .expect("batched model settled before metrics fold")
                            .drift(c as u32);
                    }
                }
                ClusterMode::Full => {}
            }
        }
    }

    /// Process all events strictly before `until`; return packet arrivals
    /// destined for nodes owned by other partitions.
    ///
    /// Batched-model flush points (each one re-peeks the queue, since a
    /// flush can schedule new local events):
    /// * before processing any event at or past the inference deadline
    ///   (`oldest pending enqueue + latency floor`);
    /// * inside [`Simulation::handle_feeder`] for batch-served clusters,
    ///   pinning the item-vs-feeder state order;
    /// * at the end of the window (or when the queue drains), so a PDES
    ///   window never carries pending items across its barrier.
    pub fn run_window(&mut self, until: SimTime) -> Vec<(SimTime, NodeId, Packet)> {
        self.init_schedule();
        let until = until.min(self.end + SimDuration::from_nanos(1));
        if let Some(eo) = self.obs.as_mut() {
            eo.windows += 1;
            // Window spans only under timed obs: at tens of thousands of
            // PDES windows per run the two clock reads plus a SpanEvent
            // per window dominate light-mode overhead.
            if eo.time_events {
                eo.obs.begin("sim.window", "sim", Some(self.now.as_nanos()));
            }
        }
        loop {
            let Some(t) = self.queue.peek_time() else {
                if self.settle_batch() {
                    continue;
                }
                break;
            };
            if t >= until {
                if self.settle_batch() {
                    continue;
                }
                break;
            }
            if self.batch_flush_due(t) {
                // Overlap mode dispatches eagerly, so the oldest
                // outstanding item is normally inflight on the helper —
                // collect it (blocking if the helper is still running).
                // Otherwise (synchronous mode) flush on this thread.
                if !self.collect_overlap() {
                    self.flush_batch();
                }
                self.maybe_dispatch_overlap();
                continue;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.now = ev.time;
            self.metrics.events_processed += 1;
            let kind_index = ev.kind.index();
            if let Some(fr) = self.flight.as_mut() {
                let packet_id = match &ev.kind {
                    EventKind::Arrive { packet, .. } => packet.id,
                    _ => u64::MAX,
                };
                fr.record(dcn_obs::FlightEvent {
                    lp: self.my_partition as u32,
                    sim_ns: ev.time.as_nanos(),
                    kind: kind_index as u8,
                    kind_name: EventKind::name_of(kind_index),
                    packet_id,
                    queue_depth: self.queue.len() as u32,
                });
            }
            let t0 = match self.obs.as_deref() {
                Some(eo) if eo.time_events => Some(Instant::now()),
                _ => None,
            };
            match ev.kind {
                EventKind::TxDone { link, dir } => self.handle_tx_done(link, dir),
                EventKind::Arrive { node, packet } => self.handle_arrive(node, packet),
                EventKind::Timer { host, flow, token } => self.handle_timer(host, flow, token),
                EventKind::FlowArrival { host } => self.handle_flow_arrival(host),
                EventKind::FeederWake { cluster } => self.handle_feeder(cluster),
                EventKind::Fault { index } => self.handle_fault(index),
            }
            if let Some(eo) = self.obs.as_mut() {
                eo.event_count[kind_index] += 1;
                if let Some(t0) = t0 {
                    eo.event_wall_ns[kind_index] += t0.elapsed().as_nanos() as u64;
                }
            }
            // Overlap mode: ship any boundary items this event queued to
            // the helper while the engine moves on to the next event.
            self.maybe_dispatch_overlap();
        }
        if let Some(eo) = self.obs.as_mut() {
            if eo.time_events {
                eo.obs.end(Some(self.now.as_nanos()));
            }
        }
        std::mem::take(&mut self.outbox)
    }

    /// Enqueue time of the oldest boundary item still awaiting a verdict —
    /// inflight on the overlap helper or queued in `pending`. Items are
    /// dispatched in enqueue order, so anything inflight is at least as
    /// old as anything pending.
    fn batch_oldest(&self) -> Option<SimTime> {
        let rt = self.batch.as_ref()?;
        let inflight = rt.overlap.as_ref().and_then(|ov| ov.inflight_oldest);
        let pending = rt.pending.first().map(|item| item.enqueued_at);
        match (inflight, pending) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Would processing an event at `t` overrun the batched-inference
    /// deadline of the oldest outstanding boundary item?
    fn batch_flush_due(&self, t: SimTime) -> bool {
        match (self.batch.as_ref(), self.batch_oldest()) {
            (Some(rt), Some(oldest)) => t >= oldest + rt.horizon,
            _ => false,
        }
    }

    /// Re-inject one flush's verdicts: arrivals timed from each item's
    /// *enqueue* time, so the trajectory is independent of when (and on
    /// which thread) inference ran. Drains `items`, keeping capacity.
    fn inject_verdicts(&mut self, items: &mut Vec<BoundaryItem>, verdicts: &[Verdict]) {
        debug_assert_eq!(verdicts.len(), items.len(), "one verdict per item");
        for (item, v) in items.drain(..).zip(verdicts) {
            match *v {
                Verdict::Drop => {
                    self.metrics.mimic_drops += 1;
                }
                Verdict::Deliver { latency, mark_ce } => {
                    let mut pkt = item.pkt;
                    if mark_ce && pkt.ecn.is_capable() {
                        pkt.ecn = Ecn::Ce;
                    }
                    let target = match item.dir {
                        BoundaryDir::Egress => self.router.core_for_flow(pkt.flow),
                        BoundaryDir::Ingress => pkt.dst,
                    };
                    self.schedule_arrival(item.enqueued_at + latency, target, pkt);
                }
            }
        }
    }

    /// Flush the batched model synchronously: one batched forward over
    /// every pending boundary item, verdicts re-injected as arrivals timed
    /// from each item's enqueue time. Returns whether anything was flushed.
    ///
    /// The deadline discipline guarantees `now < oldest_enqueue + floor`
    /// at every flush point, and every predicted latency is at least the
    /// floor — so each re-injection lands strictly in the future, and (in
    /// PDES mode) at or beyond the next window boundary for exports.
    fn flush_batch(&mut self) -> bool {
        let Some(rt) = self.batch.as_mut() else {
            return false;
        };
        if rt.pending.is_empty() {
            return false;
        }
        let batch_len = rt.pending.len() as u64;
        let t0 = match self.obs.as_deref() {
            Some(eo) if eo.time_events => Some(Instant::now()),
            _ => None,
        };
        rt.verdicts.clear();
        rt.model
            .as_mut()
            .expect("model in hand for a synchronous flush")
            .infer_batch(&rt.pending, &mut rt.verdicts);
        if let Some(eo) = self.obs.as_mut() {
            eo.flushes += 1;
            eo.flush_batch.observe(batch_len);
            if let Some(t0) = t0 {
                eo.flush_wall_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        let rt = self.batch.as_mut().expect("still installed");
        // Swap the buffers out so re-injection can borrow the rest of
        // `self`; both keep their capacity across flushes.
        let mut items = std::mem::take(&mut rt.pending);
        let verdicts = std::mem::take(&mut rt.verdicts);
        self.inject_verdicts(&mut items, &verdicts);
        let rt = self.batch.as_mut().expect("still installed");
        rt.pending = items;
        rt.verdicts = verdicts;
        true
    }

    /// Overlap mode: if the helper is idle and boundary items are queued,
    /// ship them — with the model — to the helper thread. The engine keeps
    /// processing events while the helper runs `infer_batch`; the deadline
    /// check in `run_window` collects the job back before its absence
    /// could ever matter. No-op in synchronous mode.
    fn maybe_dispatch_overlap(&mut self) {
        let Some(rt) = self.batch.as_mut() else {
            return;
        };
        let Some(ov) = rt.overlap.as_mut() else {
            return;
        };
        if ov.inflight_oldest.is_some() || rt.pending.is_empty() {
            return;
        }
        let items = std::mem::replace(&mut rt.pending, std::mem::take(&mut ov.spare_items));
        let verdicts = std::mem::take(&mut ov.spare_verdicts);
        let model = rt.model.take().expect("model in hand when helper is idle");
        ov.inflight_oldest = Some(items[0].enqueued_at);
        let batch_len = items.len() as u64;
        ov.to_worker
            .as_ref()
            .expect("helper alive while overlap is enabled")
            .send(OverlapJob {
                model,
                items,
                verdicts,
            })
            .expect("overlap helper thread alive");
        if let Some(eo) = self.obs.as_mut() {
            eo.flushes += 1;
            eo.flush_batch.observe(batch_len);
            eo.overlap_dispatches += 1;
        }
    }

    /// Collect the inflight overlapped flush, if any: waits for the helper
    /// to hand the model back (a wait is an overlap stall, counted when
    /// obs is on), then re-injects the verdicts exactly as a synchronous
    /// flush would have. Returns whether anything was collected.
    fn collect_overlap(&mut self) -> bool {
        let inflight = self
            .batch
            .as_ref()
            .and_then(|rt| rt.overlap.as_ref())
            .is_some_and(|ov| ov.inflight_oldest.is_some());
        if !inflight {
            return false;
        }
        let (job, stall_ns) = {
            let ov = self
                .batch
                .as_ref()
                .and_then(|rt| rt.overlap.as_ref())
                .expect("checked above");
            match ov.from_worker.try_recv() {
                Ok(job) => (job, None),
                Err(mpsc::TryRecvError::Empty) => {
                    // The event thread caught up with the helper: stall
                    // until the batch is done.
                    let t0 = Instant::now();
                    let job = ov.from_worker.recv().expect("overlap helper thread alive");
                    (job, Some(t0.elapsed().as_nanos() as u64))
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    unreachable!("overlap helper outlives the run")
                }
            }
        };
        if let (Some(ns), Some(eo)) = (stall_ns, self.obs.as_mut()) {
            eo.overlap_stalls += 1;
            eo.overlap_stall_wall_ns += ns;
            eo.overlap_stall_hist.observe(ns);
        }
        let OverlapJob {
            model,
            mut items,
            mut verdicts,
        } = job;
        {
            let rt = self.batch.as_mut().expect("checked above");
            rt.model = Some(model);
            rt.overlap.as_mut().expect("checked above").inflight_oldest = None;
        }
        self.inject_verdicts(&mut items, &verdicts);
        verdicts.clear();
        let ov = self
            .batch
            .as_mut()
            .and_then(|rt| rt.overlap.as_mut())
            .expect("checked above");
        ov.spare_items = items;
        ov.spare_verdicts = verdicts;
        true
    }

    /// Fully settle batched inference: collect the inflight overlapped
    /// flush (if any) and synchronously flush whatever is still pending.
    /// After this the model is in the engine's hands and no boundary item
    /// awaits a verdict — required at window ends (a PDES window must not
    /// carry verdicts across its barrier), feeder wakeups, and the end of
    /// the run. Returns whether anything was settled.
    fn settle_batch(&mut self) -> bool {
        let collected = self.collect_overlap();
        let flushed = self.flush_batch();
        collected || flushed
    }

    /// Inject an event from another partition.
    pub fn inject_arrival(&mut self, time: SimTime, node: NodeId, packet: Packet) {
        debug_assert!(self.owned(node));
        self.queue
            .schedule(time, EventKind::Arrive { node, packet });
    }

    /// Extract metrics after the run (partitioned mode).
    pub fn take_metrics(&mut self) -> Metrics {
        self.collect_cluster_drift();
        self.fold_obs();
        std::mem::replace(&mut self.metrics, Metrics::new(0))
    }

    /// Per-cluster drift scores *right now*, indexed by cluster id —
    /// `None` for packet-level clusters and unmonitored models. Settles
    /// batched inference first so the scores reflect every boundary packet
    /// of the window. PDES epoch barriers publish these cross-LP (only the
    /// owning LP observes a cluster's traffic) before the adaptive tier
    /// decision.
    pub fn cluster_drifts(&mut self) -> Vec<Option<f64>> {
        self.settle_batch();
        let mut v = vec![None; self.cluster_modes.len()];
        for (c, mode) in self.cluster_modes.iter().enumerate() {
            match mode {
                ClusterMode::Mimic { model, .. } => v[c] = model.drift(),
                ClusterMode::Batched => {
                    if let Some(rt) = &self.batch {
                        v[c] = rt
                            .model
                            .as_ref()
                            .expect("batched model settled before drift read")
                            .drift(c as u32);
                    }
                }
                ClusterMode::Full => {}
            }
        }
        v
    }

    /// Epoch-barrier tier update: hand the merged cross-LP drift vector to
    /// the batched model, which updates its accuracy-budget accounting and
    /// applies any promotions/demotions. Batched inference is settled
    /// first, so no verdict ever straddles a tier transition — this is the
    /// barrier-only transition invariant the snapshot byte-identity tests
    /// rely on. Switches for clusters passing `record` are appended to the
    /// metrics tier schedule (partitioned runs record only owned clusters,
    /// keeping the merged schedule partition-invariant). Returns every
    /// switch applied, recorded or not.
    pub fn tier_epoch(
        &mut self,
        epoch: u64,
        drift: &[Option<f64>],
        record: impl Fn(u32) -> bool,
    ) -> Vec<TierSwitch> {
        self.settle_batch();
        let Some(rt) = self.batch.as_mut() else {
            return Vec::new();
        };
        let switches = rt
            .model
            .as_mut()
            .expect("batched model settled before tier epoch")
            .on_epoch(epoch, drift);
        for s in &switches {
            if record(s.cluster) {
                self.metrics.tier_switches.push(*s);
            }
        }
        switches
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore
    // ------------------------------------------------------------------

    /// Serialize the complete deterministic state of this engine: event
    /// queue, clock, RNG streams, link transmitters and queues, per-flow
    /// transport endpoints, traffic generators, fault streams, cluster
    /// model state, and metrics. The payload is raw — callers frame it
    /// with [`crate::snapshot::write_snapshot_file`] to add the versioned
    /// header and checksum.
    ///
    /// Requires a settled engine: batched inference is settled first
    /// (collecting any overlapped flush), and the outbox must be empty —
    /// the PDES driver snapshots at inter-window barriers where both hold.
    /// A transport or model that does not implement its `save_state` hook
    /// surfaces [`SnapshotError::Unsupported`].
    ///
    /// Restoring onto an identically-configured engine and continuing is
    /// bit-identical to never having stopped: wall-clock-only state
    /// (observability recorders) is deliberately excluded.
    pub fn save_snapshot(&mut self) -> Result<Vec<u8>, crate::snapshot::SnapshotError> {
        use crate::snapshot::{SnapWriter, SnapshotError};
        self.settle_batch();
        if !self.outbox.is_empty() {
            return Err(SnapshotError::Corrupt(
                "cannot snapshot with undrained outbox (snapshot at a window barrier)".into(),
            ));
        }
        let mut w = SnapWriter::new();
        // Config fingerprint: a restore must target an engine built from
        // the same configuration, or the rebuilt immutable state (topology,
        // routing, link specs) would silently diverge from the snapshot.
        let fp = serde_json::to_string(&self.cfg)
            .map_err(|e| SnapshotError::Corrupt(format!("config fingerprint: {e}")))?;
        w.put_str(&fp);
        w.put_u8(self.my_partition);
        w.put_bool(self.initialized);
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.end.as_nanos());
        self.queue.save_state(&mut w);
        w.put_u64(self.links.len() as u64);
        for link in &self.links {
            w.put_bool(link.health.up);
            w.put_f64(link.health.extra_loss);
            w.put_f64(link.health.rate_factor);
            for dir in [Dir::Up, Dir::Down] {
                let tx = link.tx(dir);
                w.put_bool(tx.busy);
                tx.queue.save_state(&mut w);
            }
        }
        w.put_u64(self.hosts.len() as u64);
        for host in &self.hosts {
            w.put_u64(host.ids.counter());
            let mut flows: Vec<&FlowId> = host.flows.keys().collect();
            flows.sort();
            w.put_u64(flows.len() as u64);
            for flow in flows {
                let ep = &host.flows[flow];
                w.put_u64(flow.0);
                w.put_u8(match ep.role {
                    Role::Sender => 0,
                    Role::Receiver => 1,
                });
                w.put_u64(ep.spec.id.0);
                w.put_u32(ep.spec.src.0);
                w.put_u32(ep.spec.dst.0);
                w.put_u64(ep.spec.size_bytes);
                w.put_u64(ep.spec.start.as_nanos());
                ep.transport.save_state(&mut w)?;
            }
        }
        for done in &self.done {
            let mut ids: Vec<u64> = done.iter().map(|f| f.0).collect();
            ids.sort_unstable();
            w.put_u64(ids.len() as u64);
            for id in ids {
                w.put_u64(id);
            }
        }
        self.traffic.save_state(&mut w);
        match &self.fault {
            None => w.put_bool(false),
            Some(streams) => {
                w.put_bool(true);
                w.put_u64(streams.len() as u64);
                for pair in streams {
                    w.put_u64(pair[0].state());
                    w.put_u64(pair[1].state());
                }
            }
        }
        w.put_opt_u64(
            self.fault_schedule
                .as_ref()
                .map(|s| s.len() as u64),
        );
        w.put_opt_u64(self.trace_cluster.map(u64::from));
        w.put_u64(self.cluster_modes.len() as u64);
        for mode in &self.cluster_modes {
            match mode {
                ClusterMode::Full => w.put_u8(0),
                ClusterMode::Mimic {
                    model,
                    ingress,
                    egress,
                } => {
                    w.put_u8(1);
                    w.put_bool(*ingress);
                    w.put_bool(*egress);
                    model.save_state(&mut w)?;
                }
                ClusterMode::Batched => w.put_u8(2),
            }
        }
        match &self.batch {
            None => w.put_bool(false),
            Some(rt) => {
                w.put_bool(true);
                debug_assert!(rt.pending.is_empty(), "settled above");
                rt.model
                    .as_ref()
                    .expect("model in hand after settle")
                    .save_state(&mut w)?;
            }
        }
        self.metrics.save_state(&mut w);
        Ok(w.into_bytes())
    }

    /// Overwrite this engine's mutable state from a snapshot payload
    /// produced by [`Simulation::save_snapshot`]. The engine must be
    /// freshly configured exactly as the snapshotted one was — same
    /// [`SimConfig`], same partition map, same models/fault plan/transport
    /// factory installed — and must not have started running. Endpoint
    /// transports are re-created from the factory using each flow's stored
    /// spec, then overwritten with their saved state.
    pub fn restore_snapshot(
        &mut self,
        payload: &[u8],
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::{SnapReader, SnapshotError};
        assert!(
            !self.initialized,
            "restore targets a freshly configured engine"
        );
        // Spare endpoints are never part of a snapshot (reset ≡ fresh);
        // drop any accumulated before the restore for a clean slate.
        self.spares = [Vec::new(), Vec::new()];
        let mut r = SnapReader::new(payload);
        let fp = serde_json::to_string(&self.cfg)
            .map_err(|e| SnapshotError::Corrupt(format!("config fingerprint: {e}")))?;
        let saved_fp = r.get_str()?;
        if saved_fp != fp {
            return Err(SnapshotError::Corrupt(
                "snapshot was taken under a different simulation config".into(),
            ));
        }
        let part = r.get_u8()?;
        if part != self.my_partition {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot is for partition {part}, engine is partition {}",
                self.my_partition
            )));
        }
        let initialized = r.get_bool()?;
        let now = SimTime(r.get_u64()?);
        let end = SimTime(r.get_u64()?);
        self.queue.load_state(&mut r)?;
        let nlinks = r.get_count(17)?;
        if nlinks != self.links.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {nlinks} links, engine has {}",
                self.links.len()
            )));
        }
        for link in &mut self.links {
            link.health.up = r.get_bool()?;
            link.health.extra_loss = r.get_f64()?;
            link.health.rate_factor = r.get_f64()?;
            for dir in [Dir::Up, Dir::Down] {
                let tx = link.tx_mut(dir);
                tx.busy = r.get_bool()?;
                tx.queue.load_state(&mut r)?;
            }
        }
        let nhosts = r.get_count(16)?;
        if nhosts != self.hosts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {nhosts} hosts, engine has {}",
                self.hosts.len()
            )));
        }
        for hi in 0..nhosts {
            let counter = r.get_u64()?;
            let nflows = r.get_count(30)?;
            let mut endpoints = Vec::with_capacity(nflows);
            for _ in 0..nflows {
                let flow = FlowId(r.get_u64()?);
                let role = match r.get_u8()? {
                    0 => Role::Sender,
                    1 => Role::Receiver,
                    v => {
                        return Err(SnapshotError::Corrupt(format!("bad endpoint role {v}")));
                    }
                };
                let spec = FlowSpec {
                    id: FlowId(r.get_u64()?),
                    src: NodeId(r.get_u32()?),
                    dst: NodeId(r.get_u32()?),
                    size_bytes: r.get_u64()?,
                    start: SimTime(r.get_u64()?),
                };
                if spec.id != flow {
                    return Err(SnapshotError::Corrupt(format!(
                        "endpoint key {flow:?} does not match spec id {:?}",
                        spec.id
                    )));
                }
                let mut transport = match role {
                    Role::Sender => self.factory.sender(&spec),
                    Role::Receiver => self.factory.receiver(&spec),
                };
                transport.load_state(&mut r)?;
                endpoints.push((spec, transport, role));
            }
            let host = &mut self.hosts[hi];
            host.ids.set_counter(counter);
            host.flows.clear();
            for (spec, transport, role) in endpoints {
                host.add_endpoint(spec, transport, role);
            }
        }
        for done in &mut self.done {
            let n = r.get_count(8)?;
            done.clear();
            for _ in 0..n {
                done.insert(FlowId(r.get_u64()?));
            }
        }
        self.traffic.load_state(&mut r)?;
        let has_fault = r.get_bool()?;
        match (&mut self.fault, has_fault) {
            (None, false) => {}
            (Some(streams), true) => {
                let n = r.get_count(16)?;
                if n != streams.len() {
                    return Err(SnapshotError::Corrupt(format!(
                        "snapshot has {n} fault streams, engine has {}",
                        streams.len()
                    )));
                }
                for pair in streams.iter_mut() {
                    pair[0].set_state(r.get_u64()?);
                    pair[1].set_state(r.get_u64()?);
                }
            }
            _ => {
                return Err(SnapshotError::Corrupt(
                    "fault-stream presence differs (install the same fault plan before restoring)"
                        .into(),
                ));
            }
        }
        let saved_sched = r.get_opt_u64()?;
        let here_sched = self.fault_schedule.as_ref().map(|s| s.len() as u64);
        if saved_sched != here_sched {
            return Err(SnapshotError::Corrupt(
                "fault schedule differs (install the same fault plan before restoring)".into(),
            ));
        }
        let trace = r.get_opt_u64()?;
        self.trace_cluster = match trace {
            None => None,
            Some(c) => Some(
                u32::try_from(c)
                    .map_err(|_| SnapshotError::Corrupt(format!("bad trace cluster {c}")))?,
            ),
        };
        let nmodes = r.get_count(1)?;
        if nmodes != self.cluster_modes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {nmodes} clusters, engine has {}",
                self.cluster_modes.len()
            )));
        }
        for (c, mode) in self.cluster_modes.iter_mut().enumerate() {
            let disc = r.get_u8()?;
            match (disc, mode) {
                (0, ClusterMode::Full) => {}
                (
                    1,
                    ClusterMode::Mimic {
                        model,
                        ingress,
                        egress,
                    },
                ) => {
                    let (si, se) = (r.get_bool()?, r.get_bool()?);
                    if si != *ingress || se != *egress {
                        return Err(SnapshotError::Corrupt(format!(
                            "cluster {c} mimic directions differ from snapshot"
                        )));
                    }
                    model.load_state(&mut r)?;
                }
                (2, ClusterMode::Batched) => {}
                (d, _) => {
                    return Err(SnapshotError::Corrupt(format!(
                        "cluster {c} mode {d} does not match the engine's configuration"
                    )));
                }
            }
        }
        let has_batch = r.get_bool()?;
        match (&mut self.batch, has_batch) {
            (None, false) => {}
            (Some(rt), true) => {
                rt.model
                    .as_mut()
                    .expect("model in hand before the run starts")
                    .load_state(&mut r)?;
            }
            _ => {
                return Err(SnapshotError::Corrupt(
                    "batched-model presence differs from snapshot".into(),
                ));
            }
        }
        self.metrics.load_state(&mut r)?;
        r.finish()?;
        // Commit the scalars last, after every fallible read succeeded.
        self.initialized = initialized;
        self.now = now;
        self.end = end;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_flow_arrival(&mut self, host: NodeId) {
        let gf = self.traffic.next(host, self.now);
        if gf.next_arrival <= self.end {
            self.queue
                .schedule(gf.next_arrival, EventKind::FlowArrival { host });
        }
        if !self.should_create(&gf.spec) {
            return;
        }
        let spec = gf.spec;
        self.metrics.flows.insert(
            spec.id,
            FlowRecord {
                flow: spec.id,
                src: spec.src,
                dst: spec.dst,
                size_bytes: spec.size_bytes,
                start: spec.start,
                end: None,
            },
        );
        let sender = self.acquire_endpoint(Role::Sender, &spec);
        let h = &mut self.hosts[spec.src.0 as usize];
        h.add_endpoint(spec.clone(), sender, Role::Sender);
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        {
            let h = &mut self.hosts[spec.src.0 as usize];
            let ep = h.flows.get_mut(&spec.id).expect("just inserted");
            let mut ctx = TransportCtx {
                now: self.now,
                ids: &mut h.ids,
            };
            ep.transport.on_start(&mut ctx, &mut out);
        }
        self.apply_actions(spec.src, spec.id, &mut out);
        self.scratch = out;
    }

    /// A flow is instantiated only if at least one endpoint lives in a
    /// cluster that still runs full-fidelity traffic; everything else is
    /// Mimic-Mimic traffic whose effect the feeders supply (§6).
    fn should_create(&self, spec: &FlowSpec) -> bool {
        let src_c = self.topo.cluster_of(spec.src).expect("hosts have clusters");
        let dst_c = self.topo.cluster_of(spec.dst).expect("hosts have clusters");
        self.cluster_modes[src_c as usize].full_fidelity_traffic()
            || self.cluster_modes[dst_c as usize].full_fidelity_traffic()
    }

    fn handle_tx_done(&mut self, link: LinkId, dir: Dir) {
        self.links[link.0 as usize].tx_mut(dir).busy = false;
        self.try_start_tx(link, dir);
    }

    /// Apply a scheduled fault action: flip link health and, on repair,
    /// restart any transmitters that stalled while the link was down.
    fn handle_fault(&mut self, index: u32) {
        let action = self
            .fault_schedule
            .as_ref()
            .expect("Fault event without a schedule")[index as usize];
        let link = action.link;
        match action.change {
            FaultChange::Down => {
                self.links[link.0 as usize].health.up = false;
            }
            FaultChange::Up => {
                self.links[link.0 as usize].health.up = true;
                self.try_start_tx(link, Dir::Up);
                self.try_start_tx(link, Dir::Down);
            }
            FaultChange::SetLoss(p) => {
                self.links[link.0 as usize].health.extra_loss = p;
            }
            FaultChange::SetRate(f) => {
                self.links[link.0 as usize].health.rate_factor = f;
            }
        }
    }

    fn try_start_tx(&mut self, link_id: LinkId, dir: Dir) {
        let link = &mut self.links[link_id.0 as usize];
        if link.tx(dir).busy {
            return;
        }
        // A downed link stalls: packets stay queued until repair, when
        // handle_fault restarts the transmitters.
        if !link.health.up {
            return;
        }
        let Some(pkt) = link.tx_mut(dir).queue.dequeue() else {
            return;
        };
        link.tx_mut(dir).busy = true;
        let ser = link.effective_serialization(pkt.wire_bytes());
        let latency = link.spec.latency;
        let (lo, hi) = self.topo.link_ends(link_id);
        let peer = match dir {
            Dir::Up => hi,
            Dir::Down => lo,
        };
        self.queue
            .schedule(self.now + ser, EventKind::TxDone { link: link_id, dir });
        // Injected link faults: the packet occupies the wire (TxDone still
        // fires) but never arrives. Gray failures add loss on top of the
        // configured baseline; draws only happen at a positive effective
        // rate, so fault-free trajectories are untouched.
        let eff_loss =
            (self.cfg.link.loss_prob + self.links[link_id.0 as usize].health.extra_loss).min(1.0);
        if eff_loss > 0.0 {
            if let Some(streams) = &mut self.fault {
                if streams[link_id.0 as usize][dir.index()].bernoulli(eff_loss) {
                    self.metrics.fault_drops += 1;
                    return;
                }
            }
        }
        self.schedule_arrival(self.now + ser + latency, peer, pkt);
    }

    /// Schedule a packet arrival, exporting it if the node is foreign.
    fn schedule_arrival(&mut self, time: SimTime, node: NodeId, packet: Packet) {
        if self.owned(node) {
            self.queue
                .schedule(time, EventKind::Arrive { node, packet });
        } else {
            self.outbox.push((time, node, packet));
        }
    }

    fn handle_arrive(&mut self, node: NodeId, pkt: Packet) {
        match self.topo.kind(node) {
            NodeKind::Host => self.arrive_at_host(node, pkt),
            NodeKind::Tor => self.arrive_at_tor(node, pkt),
            NodeKind::Agg => self.arrive_at_agg(node, pkt),
            NodeKind::Core => self.arrive_at_core(node, pkt),
        }
    }

    fn arrive_at_host(&mut self, node: NodeId, pkt: Packet) {
        let cluster = self.topo.cluster_of(node).expect("host has cluster");
        let src_cluster = self.topo.cluster_of(pkt.src);
        if Some(cluster) == self.trace_cluster && src_cluster != Some(cluster) {
            // Ingress exit juncture: external packet delivered to a host of
            // the traced cluster.
            let core = self.router.core_for_flow(pkt.flow);
            self.metrics.boundary.push(BoundaryRecord::from_packet(
                &pkt,
                self.now,
                BoundaryDir::Ingress,
                BoundaryPhase::Exit,
                core,
            ));
        }
        self.deliver_to_endpoint(node, pkt);
    }

    fn arrive_at_tor(&mut self, node: NodeId, mut pkt: Packet) {
        let (cluster, _) = self.topo.tor_coords(node);
        let from_host = self.topo.tor_of_host(pkt.src) == node;
        let dst_cluster = self.topo.cluster_of(pkt.dst).expect("hosts have clusters");
        let leaving = dst_cluster != cluster;

        if from_host && leaving && self.cluster_modes[cluster as usize].models_egress() {
            self.mimic_boundary(cluster, BoundaryDir::Egress, pkt);
            return;
        }
        if process_hop(&mut pkt).is_err() {
            self.metrics.queue_drops += 1;
            return;
        }
        if from_host && leaving && Some(cluster) == self.trace_cluster {
            // Egress enter juncture.
            let core = self.router.core_for_flow(pkt.flow);
            self.metrics.boundary.push(BoundaryRecord::from_packet(
                &pkt,
                self.now,
                BoundaryDir::Egress,
                BoundaryPhase::Enter,
                core,
            ));
        }
        self.forward(node, pkt);
    }

    fn arrive_at_agg(&mut self, node: NodeId, mut pkt: Packet) {
        let (cluster, _) = self.topo.agg_coords(node);
        let dst_cluster = self.topo.cluster_of(pkt.dst).expect("hosts have clusters");
        let src_cluster = self.topo.cluster_of(pkt.src).expect("hosts have clusters");
        let from_core = dst_cluster == cluster && src_cluster != cluster;

        if from_core && self.cluster_modes[cluster as usize].models_ingress() {
            self.mimic_boundary(cluster, BoundaryDir::Ingress, pkt);
            return;
        }
        if process_hop(&mut pkt).is_err() {
            self.metrics.queue_drops += 1;
            return;
        }
        if from_core && Some(cluster) == self.trace_cluster {
            // Ingress enter juncture.
            let core = self.router.core_for_flow(pkt.flow);
            self.metrics.boundary.push(BoundaryRecord::from_packet(
                &pkt,
                self.now,
                BoundaryDir::Ingress,
                BoundaryPhase::Enter,
                core,
            ));
        }
        self.forward(node, pkt);
    }

    fn arrive_at_core(&mut self, node: NodeId, mut pkt: Packet) {
        let src_cluster = self.topo.cluster_of(pkt.src);
        if self.trace_cluster.is_some() && src_cluster == self.trace_cluster {
            // Egress exit juncture: the packet left the traced cluster.
            self.metrics.boundary.push(BoundaryRecord::from_packet(
                &pkt,
                self.now,
                BoundaryDir::Egress,
                BoundaryPhase::Exit,
                node,
            ));
        }
        if process_hop(&mut pkt).is_err() {
            self.metrics.queue_drops += 1;
            return;
        }
        self.forward(node, pkt);
    }

    fn forward(&mut self, node: NodeId, pkt: Packet) {
        let hop = if self.fault_schedule.is_some() {
            let links = &self.links;
            match self
                .router
                .route_avoiding(node, pkt.flow, pkt.dst, &|l| !links[l.0 as usize].health.up)
            {
                Some((hop, rerouted)) => {
                    if rerouted {
                        self.metrics.reroutes += 1;
                    }
                    hop
                }
                None => {
                    // Every ECMP candidate is down: the packet is
                    // unroutable and lost to the fault.
                    self.metrics.fault_drops += 1;
                    return;
                }
            }
        } else {
            self.router.route(node, pkt.flow, pkt.dst)
        };
        self.metrics.hops_forwarded += 1;
        let tx = self.links[hop.link.0 as usize].tx_mut(hop.dir);
        let depth = tx.queue.len_pkts();
        self.metrics
            .record_queue_depth(hop.link.0, hop.dir.index(), depth);
        let tx = self.links[hop.link.0 as usize].tx_mut(hop.dir);
        match tx.queue.enqueue(pkt) {
            crate::queue::EnqueueOutcome::Dropped => {
                self.metrics.queue_drops += 1;
            }
            crate::queue::EnqueueOutcome::Enqueued { marked } => {
                if marked {
                    self.metrics.ecn_marks += 1;
                }
                self.try_start_tx(hop.link, hop.dir);
            }
        }
    }

    /// Run a packet through a mimic'ed cluster's model and schedule its
    /// reappearance on the other side. Batch-served clusters queue the
    /// packet instead; [`Simulation::flush_batch`] settles it later.
    fn mimic_boundary(&mut self, cluster: u32, dir: BoundaryDir, mut pkt: Packet) {
        if matches!(self.cluster_modes[cluster as usize], ClusterMode::Batched) {
            let rt = self.batch.as_mut().expect("batched cluster without model");
            rt.pending.push(BoundaryItem {
                cluster,
                dir,
                pkt,
                enqueued_at: self.now,
            });
            return;
        }
        let verdict = {
            let ClusterMode::Mimic { model, .. } = &mut self.cluster_modes[cluster as usize]
            else {
                unreachable!("mimic_boundary called on full cluster")
            };
            model.on_packet(dir, &pkt, self.now)
        };
        match verdict {
            Verdict::Drop => {
                self.metrics.mimic_drops += 1;
            }
            Verdict::Deliver { latency, mark_ce } => {
                if mark_ce && pkt.ecn.is_capable() {
                    pkt.ecn = Ecn::Ce;
                }
                let target = match dir {
                    // Egress: reappear at the flow's ECMP core switch.
                    BoundaryDir::Egress => self.router.core_for_flow(pkt.flow),
                    // Ingress: delivered to the destination host.
                    BoundaryDir::Ingress => pkt.dst,
                };
                self.schedule_arrival(self.now + latency, target, pkt);
            }
        }
    }

    fn handle_feeder(&mut self, cluster: u32) {
        if matches!(self.cluster_modes[cluster as usize], ClusterMode::Batched) {
            // Settle every queued boundary packet (including an inflight
            // overlapped flush) before the feeder touches the model state,
            // so the item-vs-feeder ordering is a property of event times,
            // not of flush scheduling.
            self.settle_batch();
            let next = {
                let rt = self.batch.as_mut().expect("batched cluster without model");
                let model = rt.model.as_mut().expect("model settled before feeder");
                model.on_wake(cluster, self.now);
                model.next_wake(cluster, self.now)
            };
            if let Some(t) = next {
                let t = t.max(self.now + SimDuration::from_nanos(1));
                if t <= self.end {
                    self.queue.schedule(t, EventKind::FeederWake { cluster });
                }
            }
            return;
        }
        let next = {
            let ClusterMode::Mimic { model, .. } = &mut self.cluster_modes[cluster as usize]
            else {
                return;
            };
            model.on_wake(self.now);
            model.next_wake(self.now)
        };
        if let Some(t) = next {
            let t = t.max(self.now + SimDuration::from_nanos(1));
            if t <= self.end {
                self.queue.schedule(t, EventKind::FeederWake { cluster });
            }
        }
    }

    fn deliver_to_endpoint(&mut self, host: NodeId, pkt: Packet) {
        let idx = host.0 as usize;
        if !self.hosts[idx].flows.contains_key(&pkt.flow) {
            if self.done[idx].contains(&pkt.flow) {
                // TIME_WAIT-style responder: re-ack retransmits of flows we
                // already finished so lost final acks cannot livelock the
                // sender.
                if pkt.kind == PacketKind::Data {
                    let ack = Packet::ack(
                        self.hosts[idx].ids.next(),
                        pkt.flow,
                        host,
                        pkt.src,
                        pkt.flow_size,
                        false,
                        pkt.sent_at,
                        self.now,
                    );
                    self.send_from_host(host, ack);
                }
                return;
            }
            if pkt.kind != PacketKind::Data {
                // Stray control packet for an unknown flow (e.g. a dup ack
                // racing the sender's completion); drop it.
                return;
            }
            // First contact: instantiate the receiver endpoint.
            let spec = FlowSpec {
                id: pkt.flow,
                src: pkt.src,
                dst: pkt.dst,
                size_bytes: pkt.flow_size,
                start: self.now,
            };
            let recv = self.acquire_endpoint(Role::Receiver, &spec);
            self.hosts[idx].add_endpoint(spec, recv, Role::Receiver);
        }
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        {
            let h = &mut self.hosts[idx];
            let ep = h.flows.get_mut(&pkt.flow).expect("endpoint exists");
            let mut ctx = TransportCtx {
                now: self.now,
                ids: &mut h.ids,
            };
            ep.transport.on_packet(&pkt, &mut ctx, &mut out);
        }
        self.apply_actions(host, pkt.flow, &mut out);
        self.scratch = out;
    }

    fn handle_timer(&mut self, host: NodeId, flow: FlowId, token: u64) {
        let idx = host.0 as usize;
        if !self.hosts[idx].flows.contains_key(&flow) {
            return; // flow completed; stale timer
        }
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        {
            let h = &mut self.hosts[idx];
            let ep = h.flows.get_mut(&flow).expect("endpoint exists");
            let mut ctx = TransportCtx {
                now: self.now,
                ids: &mut h.ids,
            };
            ep.transport.on_timer(token, &mut ctx, &mut out);
        }
        self.apply_actions(host, flow, &mut out);
        self.scratch = out;
    }

    /// Apply a transport's requested actions on behalf of `host`.
    fn apply_actions(&mut self, host: NodeId, flow: FlowId, out: &mut Actions) {
        for rtt in out.rtt_samples.drain(..) {
            self.metrics.rtt.push(RttSample {
                host,
                time: self.now,
                rtt,
            });
        }
        if out.delivered > 0 {
            self.metrics.record_delivery(host, self.now, out.delivered);
        }
        for (delay, token) in out.timers.drain(..) {
            let t = self.now + delay;
            if t <= self.end {
                self.queue.schedule(t, EventKind::Timer { host, flow, token });
            }
        }
        for pkt in out.sends.drain(..) {
            self.send_from_host(host, pkt);
        }
        if out.completed {
            let idx = host.0 as usize;
            if let Some(ep) = self.hosts[idx].remove_endpoint(flow) {
                let role = ep.role;
                self.recycle_endpoint(ep);
                self.done[idx].insert(flow);
                if role == Role::Sender {
                    if let Some(rec) = self.metrics.flows.get_mut(&flow) {
                        rec.end = Some(self.now);
                    }
                }
            } else {
                self.done[idx].insert(flow);
            }
        }
    }

    fn send_from_host(&mut self, host: NodeId, pkt: Packet) {
        let link = self.topo.host_link(host);
        let depth = self.links[link.0 as usize].tx(Dir::Up).queue.len_pkts();
        self.metrics
            .record_queue_depth(link.0, Dir::Up.index(), depth);
        let tx = self.links[link.0 as usize].tx_mut(Dir::Up);
        match tx.queue.enqueue(pkt) {
            crate::queue::EnqueueOutcome::Dropped => {
                self.metrics.queue_drops += 1;
            }
            crate::queue::EnqueueOutcome::Enqueued { marked } => {
                if marked {
                    self.metrics.ecn_marks += 1;
                }
                self.try_start_tx(link, Dir::Up);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowSizeDist, SimConfig};
    use crate::mimic::ConstModel;

    fn quick_cfg() -> SimConfig {
        let mut cfg = SimConfig::small_scale();
        cfg.duration_s = 0.3;
        cfg.seed = 42;
        cfg
    }

    #[test]
    fn flows_complete_end_to_end() {
        let mut sim = Simulation::new(quick_cfg());
        let m = sim.run();
        assert!(m.flows_started() > 0, "no flows started");
        assert!(m.flows_completed() > 0, "no flows completed");
        assert!(m.total_delivered_bytes() > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(quick_cfg());
            let m = sim.run();
            (
                m.flows_completed(),
                m.total_delivered_bytes(),
                m.events_processed,
                m.queue_drops,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut cfg = quick_cfg();
            cfg.seed = seed;
            let mut sim = Simulation::new(cfg);
            sim.run().total_delivered_bytes()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn fcts_are_positive_and_bounded() {
        let mut sim = Simulation::new(quick_cfg());
        let m = sim.run();
        for f in m.fct_samples(|_| true) {
            assert!(f > 0.0 && f <= 0.3 + 1e-9, "fct {f}");
        }
    }

    #[test]
    fn rtt_samples_exceed_propagation_floor() {
        let mut sim = Simulation::new(quick_cfg());
        let m = sim.run();
        let rtts = m.rtt_samples(|_| true);
        assert!(!rtts.is_empty());
        // Minimum RTT: 2 links each way at 500 us = 2 ms, plus serialization.
        for r in rtts {
            assert!(r >= 0.002, "rtt {r} below propagation floor");
        }
    }

    #[test]
    fn boundary_trace_matches_directionality() {
        let mut cfg = quick_cfg();
        cfg.traffic.inter_cluster_fraction = 0.8;
        let mut sim = Simulation::new(cfg);
        sim.trace_cluster(1);
        let m = sim.run();
        assert!(!m.boundary.is_empty(), "no boundary records");
        let topo = FatTree::new(cfg.topo);
        for r in &m.boundary {
            match (r.dir, r.phase) {
                (BoundaryDir::Egress, _) => {
                    assert_eq!(topo.cluster_of(r.src), Some(1), "egress src must be local")
                }
                (BoundaryDir::Ingress, _) => {
                    assert_eq!(topo.cluster_of(r.dst), Some(1), "ingress dst must be local")
                }
            }
        }
        // Every exit must come at or after its enter.
        use std::collections::HashMap;
        let mut enters: HashMap<u64, SimTime> = HashMap::new();
        for r in &m.boundary {
            match r.phase {
                BoundaryPhase::Enter => {
                    enters.insert(r.pkt_id, r.time);
                }
                BoundaryPhase::Exit => {
                    if let Some(&tin) = enters.get(&r.pkt_id) {
                        assert!(r.time > tin, "exit not after enter");
                    }
                }
            }
        }
    }

    #[test]
    fn mimic_cluster_carries_traffic() {
        let mut cfg = quick_cfg();
        cfg.traffic.inter_cluster_fraction = 1.0;
        let mut sim = Simulation::new(cfg);
        sim.set_cluster_model(
            1,
            Box::new(ConstModel::new(SimDuration::from_millis(2), 0.0, 7)),
        );
        let m = sim.run();
        // Flows between cluster 0 and cluster 1 still complete.
        assert!(m.flows_completed() > 0);
        let topo = FatTree::new(cfg.topo);
        // Flows wholly inside the mimic cluster were never created.
        for f in m.flows.values() {
            let sc = topo.cluster_of(f.src).unwrap();
            let dc = topo.cluster_of(f.dst).unwrap();
            assert!(sc == 0 || dc == 0, "mimic-mimic flow was created");
        }
    }

    #[test]
    fn mimic_model_drops_reduce_completions() {
        let mut cfg = quick_cfg();
        cfg.traffic.inter_cluster_fraction = 1.0;
        let run = |drop_prob: f64| {
            let mut sim = Simulation::new(cfg);
            sim.set_cluster_model(
                1,
                Box::new(ConstModel::new(SimDuration::from_millis(2), drop_prob, 7)),
            );
            let m = sim.run();
            (m.mimic_drops, m.flows_completed())
        };
        let (drops_none, done_none) = run(0.0);
        let (drops_heavy, done_heavy) = run(0.5);
        assert_eq!(drops_none, 0);
        assert!(drops_heavy > 0);
        assert!(done_heavy < done_none, "heavy drops should slow flows");
    }

    #[test]
    fn ecn_marks_appear_with_marking_queues() {
        let mut cfg = quick_cfg();
        cfg.queue.ecn_k = Some(2);
        cfg.traffic.load = 1.2; // overload to force queues
        cfg.traffic.size = FlowSizeDist::Fixed { bytes: 100_000 };
        let mut sim = Simulation::new(cfg);
        let m = sim.run();
        // The testing transport is not ECN-capable, so marks require
        // capable packets — there should be none.
        assert_eq!(m.ecn_marks, 0);
    }

    #[test]
    fn overload_causes_queue_drops() {
        let mut cfg = quick_cfg();
        cfg.traffic.load = 1.5;
        cfg.traffic.size = FlowSizeDist::Fixed { bytes: 200_000 };
        cfg.queue.capacity_bytes = 15_000;
        let mut sim = Simulation::new(cfg);
        let m = sim.run();
        assert!(m.queue_drops > 0, "expected drops under overload");
    }

    #[test]
    fn link_faults_drop_packets_but_tcp_recovers() {
        let mut cfg = quick_cfg();
        cfg.link.loss_prob = 0.02;
        let mut sim = Simulation::new(cfg);
        let m = sim.run();
        assert!(m.fault_drops > 0, "no injected losses at 2%");
        assert!(m.flows_completed() > 0, "retransmission should recover");
        // Loss rate sanity: ~2% of transmissions.
        let rate = m.fault_drops as f64 / (m.fault_drops + m.hops_forwarded).max(1) as f64;
        assert!(rate < 0.1, "implausible injected loss rate {rate}");
        // Without injection there are none.
        cfg.link.loss_prob = 0.0;
        let m0 = Simulation::new(cfg).run();
        assert_eq!(m0.fault_drops, 0);
    }

    #[test]
    fn empty_fault_plan_preserves_trajectory() {
        let baseline = {
            let mut sim = Simulation::new(quick_cfg());
            sim.run()
        };
        let mut sim = Simulation::new(quick_cfg());
        sim.set_fault_plan(&FaultPlan::none()).unwrap();
        let m = sim.run();
        assert_eq!(m.events_processed, baseline.events_processed);
        assert_eq!(m.total_delivered_bytes(), baseline.total_delivered_bytes());
        assert_eq!(m.fct_samples(|_| true), baseline.fct_samples(|_| true));
        assert_eq!(m.fault_drops, 0);
        assert_eq!(m.reroutes, 0);
    }

    #[test]
    fn down_window_stalls_and_recovers() {
        // Take down host 0's access link mid-run; its flows stall during
        // the outage but traffic overall still completes.
        let mut cfg = quick_cfg();
        cfg.duration_s = 0.5;
        let topo = FatTree::new(cfg.topo);
        let link = topo.host_link(NodeId(0));
        let plan = FaultPlan::new(9).link_down(
            link,
            SimTime::from_secs_f64(0.1),
            SimTime::from_secs_f64(0.2),
        );
        let mut sim = Simulation::new(cfg);
        sim.set_fault_plan(&plan).unwrap();
        let m = sim.run();
        assert!(m.flows_completed() > 0, "network-wide stall");
        // Host links have no ECMP alternative, so nothing reroutes.
        assert_eq!(m.reroutes, 0);
    }

    #[test]
    fn fabric_down_window_causes_reroutes() {
        // Fail one ToR→Agg link; inter-rack flows hashed onto it must take
        // the alternate aggregation switch.
        let mut cfg = quick_cfg();
        cfg.duration_s = 0.5;
        cfg.traffic.inter_cluster_fraction = 0.8;
        let topo = FatTree::new(cfg.topo);
        let link = topo.tor_agg_link(0, 0, 0);
        let plan = FaultPlan::new(9).link_down(
            link,
            SimTime::from_secs_f64(0.05),
            SimTime::from_secs_f64(0.45),
        );
        let mut sim = Simulation::new(cfg);
        sim.set_fault_plan(&plan).unwrap();
        let m = sim.run();
        assert!(m.reroutes > 0, "no packets took the alternate agg");
        assert!(m.flows_completed() > 0);
    }

    #[test]
    fn gray_loss_window_drops_packets() {
        let mut cfg = quick_cfg();
        cfg.duration_s = 0.5;
        let plan = FaultPlan::new(3).gray_loss_all(
            SimTime::from_secs_f64(0.1),
            SimTime::from_secs_f64(0.4),
            0.05,
            false,
        );
        let mut sim = Simulation::new(cfg);
        sim.set_fault_plan(&plan).unwrap();
        let m = sim.run();
        assert!(m.fault_drops > 0, "gray loss injected no drops");
        assert!(m.flows_completed() > 0, "retransmission should recover");
    }

    #[test]
    fn same_plan_same_seed_is_deterministic() {
        let run = || {
            let mut cfg = quick_cfg();
            cfg.duration_s = 0.4;
            let plan = FaultPlan::new(7)
                .random_flaps(SimDuration::from_millis(80), SimDuration::from_millis(20))
                .gray_loss_all(
                    SimTime::from_secs_f64(0.1),
                    SimTime::from_secs_f64(0.3),
                    0.02,
                    true,
                );
            let mut sim = Simulation::new(cfg);
            sim.set_fault_plan(&plan).unwrap();
            let m = sim.run();
            (
                m.events_processed,
                m.fault_drops,
                m.reroutes,
                m.total_delivered_bytes(),
                m.fct_samples(|_| true),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_plan_rejected_after_start() {
        let mut sim = Simulation::new(quick_cfg());
        sim.run_window(SimTime::from_secs_f64(0.01));
        let err = sim.set_fault_plan(&FaultPlan::none()).unwrap_err();
        assert!(matches!(err, SimError::AlreadyStarted { .. }));
    }

    #[test]
    fn obs_on_does_not_change_trajectory() {
        let base = {
            let mut sim = Simulation::new(quick_cfg());
            sim.run()
        };
        let mut sim = Simulation::new(quick_cfg());
        sim.enable_obs();
        let m = sim.run();
        assert_eq!(m.events_processed, base.events_processed);
        assert_eq!(m.total_delivered_bytes(), base.total_delivered_bytes());
        assert_eq!(m.fct_samples(|_| true), base.fct_samples(|_| true));
        assert!(base.obs.is_none());
        assert!(m.obs.is_some());
    }

    #[test]
    fn obs_event_counts_match_events_processed() {
        let mut sim = Simulation::new(quick_cfg());
        sim.enable_obs();
        let m = sim.run();
        let report = m.obs.as_ref().unwrap();
        let sum: u64 = EVENT_COUNT_NAMES.iter().map(|n| report.counter(n)).sum();
        assert_eq!(sum, m.events_processed);
        assert_eq!(report.counter("sim.events.total"), m.events_processed);
        assert_eq!(report.counter("sim.windows"), 1);
        // The single whole-run window span exists and carries sim time.
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "sim.window");
        assert!(report.spans[0].sim_end_ns.unwrap() > 0);
        // Queues saw traffic.
        assert!(report.counter("sim.queue.enqueued") > 0);
        assert!(report.gauges["sim.queue.peak_bytes"] > 0.0);
    }

    #[test]
    fn obs_records_batched_flush_histogram() {
        use crate::mimic::BoundaryItem;
        struct ConstBatch {
            clusters: Vec<u32>,
        }
        impl BatchClusterModel for ConstBatch {
            fn clusters(&self) -> &[u32] {
                &self.clusters
            }
            fn infer_batch(&mut self, items: &[BoundaryItem], verdicts: &mut Vec<Verdict>) {
                verdicts.extend(items.iter().map(|_| Verdict::Deliver {
                    latency: SimDuration::from_millis(2),
                    mark_ce: false,
                }));
            }
            fn latency_floor(&self) -> SimDuration {
                SimDuration::from_millis(2)
            }
        }
        let mut cfg = quick_cfg();
        cfg.traffic.inter_cluster_fraction = 1.0;
        let mut sim = Simulation::new(cfg);
        sim.set_batch_model(Box::new(ConstBatch { clusters: vec![1] }));
        sim.enable_obs();
        let m = sim.run();
        let report = m.obs.as_ref().unwrap();
        assert!(report.counter("mimic.flush.count") > 0);
        let h = &report.hists["mimic.flush.batch_size"];
        assert_eq!(h.count, report.counter("mimic.flush.count"));
        assert!(h.max >= 1);
    }

    #[test]
    fn conservation_no_spontaneous_bytes() {
        let mut sim = Simulation::new(quick_cfg());
        let m = sim.run();
        let offered: u64 = m.flows.values().map(|f| f.size_bytes).sum();
        assert!(
            m.total_delivered_bytes() <= offered,
            "delivered more than offered"
        );
    }
}
