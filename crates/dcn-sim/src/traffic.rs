//! Workload generation.
//!
//! Each host runs an independent Poisson flow-arrival process whose rate is
//! set so the host offers `load × access_bandwidth` of traffic on average.
//! Flow sizes come from a configurable distribution (the default is the
//! heavy-tailed web-search-style empirical CDF used across the DC
//! literature and by the paper), and destinations are chosen with a
//! cluster-locality parameter `p` — the fraction of traffic that leaves the
//! source cluster.
//!
//! **Scale independence.** Per the paper's restriction (§4.2), the per-host
//! model of flow arrival, flow size, and locality does not depend on the
//! number of clusters; only the spread of inter-cluster destinations does.
//! Each host draws from its own seeded stream, so host `h`'s workload is
//! identical in a 2-cluster and a 128-cluster simulation of the same seed —
//! the property MimicNet's train-small/predict-big pipeline relies on, and
//! the property that lets a Mimic composition replay exactly the
//! ground-truth workload for observable traffic.

use crate::config::{FlowSizeDist, TrafficConfig};
use crate::packet::FlowId;
use crate::rng::{EmpiricalCdf, SplitMix64};
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, NodeId};
use crate::transport::FlowSpec;

/// The web-search flow-size CDF *shape* (values in "shape bytes" that get
/// rescaled to the configured mean). Breakpoints follow the widely used
/// DCTCP measurement: mostly small flows with a heavy elephant tail.
fn web_search_shape() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (600.0, 0.00),
        (6_000.0, 0.15),
        (13_000.0, 0.30),
        (19_000.0, 0.40),
        (33_000.0, 0.53),
        (53_000.0, 0.60),
        (133_000.0, 0.70),
        (667_000.0, 0.80),
        (1_333_000.0, 0.90),
        (3_333_000.0, 0.97),
        (6_667_000.0, 1.00),
    ])
}

/// Per-host generator state.
#[derive(Clone, Debug)]
struct HostGen {
    rng: SplitMix64,
    flow_counter: u64,
}

/// A freshly sampled flow plus when the host's next flow arrives.
#[derive(Clone, Debug)]
pub struct GeneratedFlow {
    pub spec: FlowSpec,
    pub next_arrival: SimTime,
}

/// Deterministic workload generator for all hosts.
pub struct TrafficGen {
    topo: FatTree,
    cfg: TrafficConfig,
    /// Mean interarrival time per host.
    mean_interarrival: SimDuration,
    web_search: EmpiricalCdf,
    hosts: Vec<HostGen>,
}

impl TrafficGen {
    /// Build the generator. `host_bw_bps` is the access link speed used to
    /// convert `load` into a flow arrival rate.
    pub fn new(topo: FatTree, cfg: TrafficConfig, host_bw_bps: u64, seed: u64) -> TrafficGen {
        assert!(cfg.load > 0.0 && cfg.load <= 2.0, "load out of range");
        assert!(
            (0.0..=1.0).contains(&cfg.inter_cluster_fraction),
            "locality fraction must be a probability"
        );
        let mean_bytes = cfg.size.mean_bytes();
        assert!(mean_bytes > 0.0);
        // flows/sec so that load * bw bits/sec are offered on average.
        let rate = cfg.load * host_bw_bps as f64 / (mean_bytes * 8.0);
        let hosts = (0..topo.params.num_hosts())
            .map(|h| HostGen {
                // Tag streams by purpose (0x7 = traffic) and host id.
                rng: SplitMix64::derive(seed, 0x7000_0000_0000_0000 | h as u64),
                flow_counter: 0,
            })
            .collect();
        TrafficGen {
            topo,
            cfg,
            mean_interarrival: SimDuration::from_secs_f64(1.0 / rate),
            web_search: web_search_shape(),
            hosts,
        }
    }

    /// Mean flow interarrival per host.
    pub fn mean_interarrival(&self) -> SimDuration {
        self.mean_interarrival
    }

    /// The first arrival offset for `host` (call once at start of run).
    pub fn first_arrival(&mut self, host: NodeId) -> SimTime {
        let g = &mut self.hosts[host.0 as usize];
        let dt = g.rng.exp(self.mean_interarrival.as_secs_f64());
        SimTime::ZERO + SimDuration::from_secs_f64(dt)
    }

    /// Sample `host`'s next flow starting at `now`, plus its next arrival
    /// time. The draw sequence (interarrival, size, locality, destination)
    /// is fixed so that filtering flows out (Mimic composition) never
    /// perturbs later draws.
    pub fn next(&mut self, host: NodeId, now: SimTime) -> GeneratedFlow {
        let params = self.topo.params;
        let g = &mut self.hosts[host.0 as usize];

        let dt = g.rng.exp(self.mean_interarrival.as_secs_f64());
        let next_arrival = now + SimDuration::from_secs_f64(dt);

        let size_bytes = match self.cfg.size {
            FlowSizeDist::WebSearch { mean_bytes } => {
                let scale = mean_bytes / self.web_search.mean();
                (self.web_search.sample(&mut g.rng) * scale).max(1.0) as u64
            }
            FlowSizeDist::Fixed { bytes } => bytes,
            FlowSizeDist::Pareto { mean_bytes, shape } => {
                assert!(shape > 1.0, "Pareto mean requires shape > 1");
                let xm = mean_bytes * (shape - 1.0) / shape;
                g.rng.pareto(xm, shape).max(1.0) as u64
            }
            FlowSizeDist::Uniform {
                min_bytes,
                max_bytes,
            } => min_bytes + g.rng.next_below(max_bytes - min_bytes + 1),
        };

        let (src_cluster, _, _) = self.topo.host_coords(host);
        let hosts_per_cluster = params.hosts_per_cluster();
        // Incast concentrates traffic on a cluster's first `sinks` hosts.
        let within_span = match self.cfg.pattern {
            crate::config::TrafficPattern::Uniform => hosts_per_cluster,
            crate::config::TrafficPattern::Incast { sinks } => {
                sinks.clamp(1, hosts_per_cluster)
            }
        };
        let go_inter = g.rng.bernoulli(self.cfg.inter_cluster_fraction)
            || within_span == 1 && hosts_per_cluster == 1; // can't stay local alone
        let dst = if go_inter && params.clusters > 1 {
            // Uniform over (allowed hosts) of the other clusters.
            let other = g.rng.next_below(((params.clusters - 1) * within_span) as u64);
            let cluster = other as u32 / within_span;
            let cluster = if cluster >= src_cluster { cluster + 1 } else { cluster };
            let within = other as u32 % within_span;
            self.topo.host(
                cluster,
                within / params.hosts_per_rack,
                within % params.hosts_per_rack,
            )
        } else {
            // Uniform over the (allowed) other hosts of this cluster.
            let local_index = host.0 % hosts_per_cluster;
            let exclude_self = local_index < within_span;
            let span = if exclude_self { within_span - 1 } else { within_span };
            let span = span.max(1);
            let mut within = g.rng.next_below(span as u64) as u32;
            if exclude_self && within >= local_index {
                within += 1;
            }
            let within = within.min(hosts_per_cluster - 1);
            self.topo.host(
                src_cluster,
                within / params.hosts_per_rack,
                within % params.hosts_per_rack,
            )
        };

        g.flow_counter += 1;
        let id = FlowId(((host.0 as u64) << 32) | g.flow_counter);
        GeneratedFlow {
            spec: FlowSpec {
                id,
                src: host,
                dst,
                size_bytes,
                start: now,
            },
            next_arrival,
        }
    }
}

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};

impl TrafficGen {
    /// Serialize the mutable per-host generator state (RNG positions and
    /// flow counters). The fitted distributions are rebuilt from config.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.hosts.len() as u64);
        for g in &self.hosts {
            w.put_u64(g.rng.state());
            w.put_u64(g.flow_counter);
        }
    }

    /// One host's generator state `(rng_state, flow_counter)`. The window
    /// digest reads this per owned host, so each host's stream is
    /// attributed to exactly one LP.
    pub fn host_state(&self, host: NodeId) -> (u64, u64) {
        let g = &self.hosts[host.0 as usize];
        (g.rng.state(), g.flow_counter)
    }

    /// Restore per-host generator state from [`TrafficGen::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(16)?;
        if n != self.hosts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "traffic generator has {} hosts, snapshot has {n}",
                self.hosts.len()
            )));
        }
        for g in &mut self.hosts {
            g.rng.set_state(r.get_u64()?);
            g.flow_counter = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrafficConfig;
    use crate::topology::{FatTree, FatTreeParams};

    fn gen_with(clusters: u32, seed: u64) -> TrafficGen {
        let topo = FatTree::new(FatTreeParams::new(clusters, 2, 2, 2, 1));
        TrafficGen::new(topo, TrafficConfig::default(), 10_000_000, seed)
    }

    #[test]
    fn arrival_rate_matches_load() {
        let g = gen_with(2, 5);
        // mean size 80 KB @ 10 Mbps, load 0.7 -> 10.9375 flows/s.
        let expect = 0.7 * 10e6 / (80_000.0 * 8.0);
        let mean = g.mean_interarrival().as_secs_f64();
        assert!((1.0 / mean - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn flows_never_target_self() {
        let mut g = gen_with(2, 1);
        let h = NodeId(0);
        let mut now = SimTime::ZERO;
        for _ in 0..2000 {
            let f = g.next(h, now);
            assert_ne!(f.spec.dst, h);
            now = f.next_arrival;
        }
    }

    #[test]
    fn locality_fraction_respected() {
        let topo = FatTree::new(FatTreeParams::new(4, 2, 2, 2, 1));
        let cfg = TrafficConfig {
            inter_cluster_fraction: 0.3,
            ..TrafficConfig::default()
        };
        let mut g = TrafficGen::new(topo.clone(), cfg, 10_000_000, 2);
        let h = topo.host(1, 0, 0);
        let n = 5000;
        let mut inter = 0;
        for _ in 0..n {
            let f = g.next(h, SimTime::ZERO);
            if topo.cluster_of(f.spec.dst) != Some(1) {
                inter += 1;
            }
        }
        let frac = inter as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "inter fraction {frac}");
    }

    #[test]
    fn host_stream_is_independent_of_cluster_count() {
        // The same host must see the same flow sizes & start times whether
        // the network has 2 or 8 clusters (destinations may differ).
        let mut a = gen_with(2, 9);
        let mut b = gen_with(8, 9);
        let h = NodeId(1);
        let mut now_a = SimTime::ZERO;
        let mut now_b = SimTime::ZERO;
        for _ in 0..200 {
            let fa = a.next(h, now_a);
            let fb = b.next(h, now_b);
            assert_eq!(fa.spec.size_bytes, fb.spec.size_bytes);
            assert_eq!(fa.next_arrival, fb.next_arrival);
            assert_eq!(fa.spec.id, fb.spec.id);
            now_a = fa.next_arrival;
            now_b = fb.next_arrival;
        }
    }

    #[test]
    fn offered_load_empirically_close() {
        let mut g = gen_with(2, 123);
        let h = NodeId(2);
        let mut now = SimTime::ZERO;
        let mut bytes = 0u64;
        let mut flows = 0u64;
        while now.as_secs_f64() < 2000.0 {
            let f = g.next(h, now);
            bytes += f.spec.size_bytes;
            flows += 1;
            now = f.next_arrival;
        }
        let offered_bps = bytes as f64 * 8.0 / now.as_secs_f64();
        let target = 0.7 * 10e6;
        assert!(
            (offered_bps - target).abs() / target < 0.15,
            "offered {offered_bps} vs target {target} over {flows} flows"
        );
    }

    #[test]
    fn web_search_is_heavy_tailed() {
        let mut g = gen_with(2, 77);
        let h = NodeId(0);
        let sizes: Vec<u64> = (0..20_000).map(|_| g.next(h, SimTime::ZERO).spec.size_bytes).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        // Heavy tail: mean far above median.
        assert!(mean > 3.0 * median, "mean {mean} median {median}");
        // And the mean should approximate the configured 80 KB.
        assert!((mean - 80_000.0).abs() / 80_000.0 < 0.15, "mean {mean}");
    }

    #[test]
    fn incast_concentrates_destinations() {
        use crate::config::TrafficPattern;
        let topo = FatTree::new(FatTreeParams::new(4, 2, 2, 2, 1));
        let cfg = TrafficConfig {
            pattern: TrafficPattern::Incast { sinks: 1 },
            inter_cluster_fraction: 1.0,
            ..TrafficConfig::default()
        };
        let mut g = TrafficGen::new(topo.clone(), cfg, 10_000_000, 3);
        for _ in 0..500 {
            let f = g.next(topo.host(0, 1, 1), SimTime::ZERO);
            let (_, rack, slot) = topo.host_coords(f.spec.dst);
            assert_eq!((rack, slot), (0, 0), "incast must target the sink host");
            assert_ne!(topo.cluster_of(f.spec.dst), Some(0));
        }
    }

    #[test]
    fn incast_never_targets_self_intra_cluster() {
        use crate::config::TrafficPattern;
        let topo = FatTree::new(FatTreeParams::new(2, 2, 2, 2, 1));
        let cfg = TrafficConfig {
            pattern: TrafficPattern::Incast { sinks: 2 },
            inter_cluster_fraction: 0.0,
            ..TrafficConfig::default()
        };
        let mut g = TrafficGen::new(topo.clone(), cfg, 10_000_000, 9);
        for h in 0..4u32 {
            for _ in 0..200 {
                let f = g.next(NodeId(h), SimTime::ZERO);
                assert_ne!(f.spec.dst, NodeId(h), "self-flow generated");
            }
        }
    }

    #[test]
    fn flow_ids_unique_across_hosts() {
        let mut g = gen_with(2, 4);
        let mut seen = std::collections::HashSet::new();
        for h in 0..8u32 {
            for _ in 0..50 {
                let f = g.next(NodeId(h), SimTime::ZERO);
                assert!(seen.insert(f.spec.id), "duplicate flow id");
            }
        }
    }
}
