//! Typed errors for user-facing APIs.
//!
//! Invalid *user input* — malformed configurations, out-of-range fault
//! plans — must surface as `Err`, never as a panic; panics are reserved
//! for internal invariant violations. [`crate::config::SimConfig::validate`]
//! and [`crate::fault::FaultPlan::compile`] are the main producers.

use std::fmt;

/// An error in user-supplied simulator input.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A configuration field holds an invalid value.
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `"link.loss_prob"`).
        field: &'static str,
        reason: String,
    },
    /// A fault plan references nonexistent topology elements or holds
    /// out-of-range parameters.
    InvalidFaultPlan { reason: String },
    /// The operation is only legal before the first event is processed
    /// (e.g. installing a fault plan into a running simulation).
    AlreadyStarted { what: &'static str },
}

impl SimError {
    pub(crate) fn config(field: &'static str, reason: impl Into<String>) -> SimError {
        SimError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    pub(crate) fn plan(reason: impl Into<String>) -> SimError {
        SimError::InvalidFaultPlan {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: `{field}` {reason}")
            }
            SimError::InvalidFaultPlan { reason } => write!(f, "invalid fault plan: {reason}"),
            SimError::AlreadyStarted { what } => {
                write!(f, "{what} must happen before the simulation starts")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::config("link.loss_prob", "must lie in [0, 1]");
        assert!(e.to_string().contains("link.loss_prob"));
        let e = SimError::plan("link 99 does not exist");
        assert!(e.to_string().contains("fault plan"));
    }
}
