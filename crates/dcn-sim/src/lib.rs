//! # dcn-sim — a packet-level data center network simulator
//!
//! `dcn-sim` is a deterministic discrete-event simulator (DES) for FatTree
//! data center networks. It is the simulation substrate used by the
//! [MimicNet](https://doi.org/10.1145/3452296.3472926) reproduction in this
//! workspace, playing the role that OMNeT++ v4.5 + INET v2.4 play in the
//! original paper.
//!
//! ## What it models
//!
//! * **Topology** ([`topology`]): canonical FatTree-style clusters — hosts
//!   under Top-of-Rack (ToR) switches, ToRs under cluster (aggregation)
//!   switches, clusters joined by core switches. Strict up-down routing with
//!   ECMP ([`routing`]).
//! * **Switches and queues** ([`switch`], [`queue`]): output-queued
//!   store-and-forward switches with DropTail, RED/ECN-marking, or strict
//!   priority queue disciplines.
//! * **Links** ([`link`]): full-duplex links with configurable bandwidth and
//!   propagation latency; serialization is modeled explicitly.
//! * **Hosts and transports** ([`host`], [`transport`]): hosts run
//!   per-flow transport state machines behind the [`transport::Transport`]
//!   trait (implementations live in the `dcn-transport` crate).
//! * **Workloads** ([`traffic`]): per-host Poisson flow arrivals with
//!   heavy-tailed, scale-independent flow-size distributions and a
//!   cluster-locality parameter, as the paper's restrictions require.
//! * **Instrumentation** ([`instrument`]): flow completion times, binned
//!   per-host throughput, packet RTTs, and the cluster-boundary packet
//!   traces that MimicNet trains on.
//! * **Mimic hook** ([`mimic`]): clusters can be replaced wholesale by a
//!   user-provided model implementing [`mimic::ClusterModel`]; this is the
//!   seam the `mimicnet` crate plugs its learned Mimics into.
//! * **Parallel execution** ([`pdes`]): conservative, barrier-synchronous
//!   parallel DES across per-cluster logical processes, used to reproduce the
//!   paper's Figure 2 observation that parallelism alone does not rescue
//!   tightly coupled DCN simulations.
//!
//! ## Determinism
//!
//! Every run is a pure function of its [`config::SimConfig`] (including the
//! seed). Virtual time is a `u64` nanosecond counter ([`time::SimTime`]); all
//! randomness flows from seeded [`rng::SplitMix64`] streams; simultaneous
//! events are ordered by a stable, structurally derived key so that
//! sequential and parallel executions agree bit-for-bit.
//!
//! ## Quickstart
//!
//! ```
//! use dcn_sim::config::SimConfig;
//! use dcn_sim::simulator::Simulation;
//!
//! let mut cfg = SimConfig::small_scale(); // the paper's 2-cluster setup
//! cfg.duration_s = 0.05;
//! cfg.seed = 7;
//! let mut sim = Simulation::new(cfg);
//! let metrics = sim.run();
//! assert!(metrics.flows_completed() > 0);
//! ```

pub mod cdf;
pub mod config;
pub mod error;
pub mod event;
pub mod fault;
pub mod host;
pub mod instrument;
pub mod link;
pub mod mimic;
pub mod packet;
pub mod pdes;
pub mod queue;
pub mod rng;
pub mod routing;
pub mod simulator;
pub mod snapshot;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod transport;

pub use config::SimConfig;
pub use packet::Packet;
pub use simulator::Simulation;
pub use time::{SimDuration, SimTime};
