//! Host state: per-flow transport endpoints and packet id allocation.
//!
//! A host is a container of independent flow endpoints — the paper's
//! "intra-host isolation" restriction (§4.2) means there is deliberately no
//! shared state (CPU model, pacing arbiter) across flows.

use crate::packet::FlowId;
use crate::topology::NodeId;
use crate::transport::{FlowSpec, PacketIdAlloc, Transport};
use std::collections::HashMap;

/// Which side of the flow this endpoint is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    Sender,
    Receiver,
}

/// One endpoint (sender or receiver) of a flow living on a host.
pub struct Endpoint {
    pub transport: Box<dyn Transport>,
    pub role: Role,
    /// The flow this endpoint serves; kept so a checkpoint restore can
    /// re-create the transport from the factory before loading its state.
    pub spec: FlowSpec,
}

/// Mutable state of one host.
pub struct HostState {
    pub id: NodeId,
    /// Active flow endpoints, keyed by flow.
    pub flows: HashMap<FlowId, Endpoint>,
    /// Deterministic packet id allocator.
    pub ids: PacketIdAlloc,
}

impl HostState {
    pub fn new(id: NodeId) -> HostState {
        HostState {
            id,
            flows: HashMap::new(),
            ids: PacketIdAlloc::new(id),
        }
    }

    /// Register a new endpoint. Panics on duplicate (flow ids are unique).
    pub fn add_endpoint(&mut self, spec: FlowSpec, transport: Box<dyn Transport>, role: Role) {
        let flow = spec.id;
        let prev = self.flows.insert(
            flow,
            Endpoint {
                transport,
                role,
                spec,
            },
        );
        assert!(prev.is_none(), "duplicate endpoint for flow {flow:?}");
    }

    /// Remove an endpoint when its flow completes, returning it so the
    /// engine can recycle the boxed transport instead of freeing it.
    pub fn remove_endpoint(&mut self, flow: FlowId) -> Option<Endpoint> {
        self.flows.remove(&flow)
    }

    /// Active flow count (both roles).
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::transport::testing::FixedWindowFactory;
    use crate::transport::{FlowSpec, TransportFactory};
    use crate::SimTime;

    fn spec() -> FlowSpec {
        FlowSpec {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1000,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn add_and_remove_endpoints() {
        let f = FixedWindowFactory {
            window: 1,
            rto: SimDuration::from_millis(1),
        };
        let mut h = HostState::new(NodeId(0));
        h.add_endpoint(spec(), f.sender(&spec()), Role::Sender);
        assert_eq!(h.active_flows(), 1);
        h.remove_endpoint(FlowId(1));
        assert_eq!(h.active_flows(), 0);
        // Removing again is a no-op.
        h.remove_endpoint(FlowId(1));
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_endpoint_panics() {
        let f = FixedWindowFactory {
            window: 1,
            rto: SimDuration::from_millis(1),
        };
        let mut h = HostState::new(NodeId(0));
        h.add_endpoint(spec(), f.sender(&spec()), Role::Sender);
        h.add_endpoint(spec(), f.receiver(&spec()), Role::Receiver);
    }
}
