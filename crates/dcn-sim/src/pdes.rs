//! Conservative parallel discrete-event simulation (PDES).
//!
//! The paper's §2.2 observes that parallelizing a tightly coupled data
//! center simulation often *hurts*: logical processes (LPs) must
//! synchronize whenever simulated time advances past the inter-LP
//! lookahead, and in a FatTree that lookahead is a single link latency.
//! This module implements the classic conservative approach so the claim
//! can be reproduced (Figure 2) and so Mimic compositions — which remove
//! most cross-LP traffic — can demonstrate their better parallel behaviour.
//!
//! Design: *barrier-synchronous conservative windows.* The network is
//! partitioned by cluster (core switches round-robin). Every LP runs the
//! ordinary [`Simulation`] engine restricted to its nodes. Because every
//! cross-partition packet needs at least one link latency `Δ` to arrive,
//! each LP can safely process the window `[T, T+Δ)` in isolation; at the
//! barrier, exported arrivals are exchanged and the window advances. With
//! the engine's structural event ordering, the result is **bit-identical**
//! to the sequential execution (asserted by integration tests).

use crate::config::SimConfig;
use crate::instrument::Metrics;
use crate::simulator::Simulation;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, NodeId, NodeKind};
use crate::transport::TransportFactory;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Map every node to a partition: clusters round-robin, cores round-robin.
pub fn partition_by_cluster(topo: &FatTree, partitions: usize) -> Vec<u8> {
    assert!(partitions >= 1 && partitions <= u8::MAX as usize);
    let p = partitions as u32;
    (0..topo.params.num_nodes())
        .map(|n| {
            let n = NodeId(n);
            match topo.kind(n) {
                NodeKind::Core => {
                    let (a, j) = topo.core_coords(n);
                    ((a * topo.params.cores_per_agg + j) % p) as u8
                }
                _ => (topo.cluster_of(n).expect("cluster-tier node") % p) as u8,
            }
        })
        .collect()
}

type RemoteMsg = (SimTime, NodeId, crate::packet::Packet);

/// Run `cfg` across `partitions` logical processes on OS threads and return
/// the merged metrics. `make_factory` is invoked once per LP.
///
/// With `partitions == 1` this degenerates to (and exactly matches) the
/// sequential engine.
pub fn run_partitioned(
    cfg: SimConfig,
    partitions: usize,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
) -> Metrics {
    // Lookahead: every cross-partition hop takes at least one propagation
    // latency.
    run_partitioned_setup(cfg, partitions, cfg.link.latency, make_factory, &|_| {})
}

/// [`run_partitioned`] with an explicit lookahead `window` and a per-LP
/// `setup` hook, run on each freshly built engine before its partition is
/// assigned. This is how composed simulations enter PDES mode: the hook
/// installs the cluster models (every LP installs the full set; ownership
/// decides which ones actually see traffic), and the window shrinks to
/// `min(link latency, model latency floor)` because a batched Mimic's
/// re-injections can land on foreign core switches as little as one
/// latency floor after their window began.
pub fn run_partitioned_setup(
    cfg: SimConfig,
    partitions: usize,
    window: SimDuration,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
    setup: &(dyn Fn(&mut Simulation) + Sync),
) -> Metrics {
    assert!(partitions >= 1);
    let topo = FatTree::new(cfg.topo);
    let owner = Arc::new(partition_by_cluster(&topo, partitions));

    assert!(window > SimDuration::ZERO, "zero lookahead breaks conservative PDES");
    let end = SimTime::from_secs_f64(cfg.duration_s) + SimDuration::from_nanos(1);

    let channels: Vec<(Sender<RemoteMsg>, Receiver<RemoteMsg>)> =
        (0..partitions).map(|_| channel()).collect();
    let senders: Vec<Sender<RemoteMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let mut receivers: Vec<Option<Receiver<RemoteMsg>>> =
        channels.into_iter().map(|(_, r)| Some(r)).collect();

    let barrier = Arc::new(Barrier::new(partitions));

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(partitions);
        for (part, receiver) in receivers.iter_mut().enumerate() {
            let owner = owner.clone();
            let senders = senders.clone();
            let rx = receiver.take().expect("receiver taken once");
            let barrier = barrier.clone();
            handles.push(scope.spawn(move || {
                let mut sim = Simulation::with_transport(cfg, make_factory());
                setup(&mut sim);
                sim.set_partition(owner.clone(), part as u8);
                // Driver-level obs accounting (active only when the setup
                // hook enabled obs on the engine): barrier stall time and
                // cross-partition message counts, folded into the engine's
                // report so they merge with everything else at the join.
                let obs_on = sim.obs_enabled();
                sim.obs_span_begin("pdes.lp", "pdes");
                let mut barrier_wait_ns = 0u64;
                let (mut exported, mut imported) = (0u64, 0u64);
                let mut t = SimTime::ZERO;
                while t < end {
                    let t_next = (t + window).min(end);
                    let outbox = sim.run_window(t_next);
                    if obs_on {
                        exported += outbox.len() as u64;
                    }
                    for (time, node, pkt) in outbox {
                        let dest = owner[node.0 as usize] as usize;
                        senders[dest].send((time, node, pkt)).expect("LP alive");
                    }
                    if obs_on {
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                    while let Ok((time, node, pkt)) = rx.try_recv() {
                        if obs_on {
                            imported += 1;
                        }
                        sim.inject_arrival(time, node, pkt);
                    }
                    if obs_on {
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                    t = t_next;
                }
                sim.obs_span_end();
                if obs_on {
                    sim.obs_counter_add("pdes.barrier_wait_ns", barrier_wait_ns);
                    sim.obs_counter_add("pdes.msgs_exported", exported);
                    sim.obs_counter_add("pdes.msgs_imported", imported);
                    sim.obs_counter_add("pdes.partitions", 1);
                }
                sim.take_metrics()
            }));
        }
        let mut merged: Option<Metrics> = None;
        for h in handles {
            let m = h.join().expect("LP panicked");
            match &mut merged {
                None => merged = Some(m),
                Some(acc) => acc.merge(m),
            }
        }
        merged.expect("at least one partition")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::testing::FixedWindowFactory;

    fn cfg() -> SimConfig {
        let mut c = SimConfig::small_scale();
        c.topo.clusters = 4;
        c.duration_s = 0.2;
        c.seed = 11;
        c
    }

    fn factory() -> Box<dyn TransportFactory> {
        Box::new(FixedWindowFactory::default())
    }

    #[test]
    fn partition_map_covers_all_nodes() {
        let topo = FatTree::new(cfg().topo);
        let owner = partition_by_cluster(&topo, 3);
        assert_eq!(owner.len(), topo.params.num_nodes() as usize);
        assert!(owner.iter().all(|&p| p < 3));
        // All nodes of the same cluster share a partition.
        for c in 0..4 {
            let expect = owner[topo.tor(c, 0).0 as usize];
            assert_eq!(owner[topo.host(c, 1, 1).0 as usize], expect);
            assert_eq!(owner[topo.agg(c, 1).0 as usize], expect);
        }
    }

    #[test]
    fn single_partition_matches_sequential() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 1, &factory);
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.queue_drops, m_par.queue_drops);
    }

    #[test]
    fn two_partitions_match_sequential_exactly() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 2, &factory);
        assert_eq!(m_seq.flows_started(), m_par.flows_started());
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.queue_drops, m_par.queue_drops);
        // Per-flow completion times must agree bit-for-bit.
        for (id, rec) in &m_seq.flows {
            let other = m_par.flows.get(id).expect("flow missing in parallel run");
            assert_eq!(rec.end, other.end, "FCT mismatch for {id:?}");
        }
    }

    #[test]
    fn obs_merges_across_partitions() {
        let m_par = run_partitioned_setup(cfg(), 2, cfg().link.latency, &factory, &|sim| {
            sim.enable_obs()
        });
        let m_seq = run_partitioned_setup(cfg(), 1, cfg().link.latency, &factory, &|sim| {
            sim.enable_obs()
        });
        // Obs on must not perturb the trajectory.
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        let rp = m_par.obs.as_ref().expect("obs report present");
        let rs = m_seq.obs.as_ref().expect("obs report present");
        // Event counts are trajectory properties: identical after merge.
        assert_eq!(rp.counter("sim.events.total"), rs.counter("sim.events.total"));
        assert_eq!(rp.counter("pdes.partitions"), 2);
        assert_eq!(rs.counter("pdes.partitions"), 1);
        // Every exported message is imported by its destination partition.
        assert_eq!(rp.counter("pdes.msgs_exported"), rp.counter("pdes.msgs_imported"));
        assert!(rp.counter("pdes.msgs_exported") > 0, "no cross-partition traffic");
        // Both partitions contributed window spans on distinct tracks.
        let tracks: std::collections::HashSet<u32> =
            rp.spans.iter().map(|s| s.track).collect();
        assert_eq!(tracks.len(), 2);
        assert_eq!(rp.counter("sim.windows"), 2 * rs.counter("sim.windows"));
    }

    #[test]
    fn four_partitions_match_sequential() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 4, &factory);
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
    }
}
