//! Conservative parallel discrete-event simulation (PDES).
//!
//! The paper's §2.2 observes that parallelizing a tightly coupled data
//! center simulation often *hurts*: logical processes (LPs) must
//! synchronize whenever simulated time advances past the inter-LP
//! lookahead, and in a FatTree that lookahead is a single link latency.
//! This module implements the classic conservative approach so the claim
//! can be reproduced (Figure 2) and so Mimic compositions — which remove
//! most cross-LP traffic — can demonstrate their better parallel behaviour.
//!
//! Design: *barrier-synchronous conservative windows.* The network is
//! partitioned by cluster (core switches round-robin). Every LP runs the
//! ordinary [`Simulation`] engine restricted to its nodes. Because every
//! cross-partition packet needs at least one link latency `Δ` to arrive,
//! each LP can safely process the window `[T, T+Δ)` in isolation; at the
//! barrier, exported arrivals are exchanged and the window advances. With
//! the engine's structural event ordering, the result is **bit-identical**
//! to the sequential execution (asserted by integration tests).

use crate::config::SimConfig;
use crate::instrument::Metrics;
use crate::simulator::Simulation;
use crate::snapshot::{atomic_write, read_snapshot_file, write_snapshot_file, SnapshotError};
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, NodeId, NodeKind};
use crate::transport::TransportFactory;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

/// Map every node to a partition: clusters round-robin, cores round-robin.
pub fn partition_by_cluster(topo: &FatTree, partitions: usize) -> Vec<u8> {
    assert!(partitions >= 1 && partitions <= u8::MAX as usize);
    let p = partitions as u32;
    (0..topo.params.num_nodes())
        .map(|n| {
            let n = NodeId(n);
            match topo.kind(n) {
                NodeKind::Core => {
                    let (a, j) = topo.core_coords(n);
                    ((a * topo.params.cores_per_agg + j) % p) as u8
                }
                _ => (topo.cluster_of(n).expect("cluster-tier node") % p) as u8,
            }
        })
        .collect()
}

type RemoteMsg = (SimTime, NodeId, crate::packet::Packet);

/// Name of the checkpoint directory's manifest file. The manifest is the
/// commit point: part files are written first (each atomically), then the
/// manifest is atomically replaced to point at the new generation. A crash
/// at any instant leaves the manifest referencing a complete generation.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// The manifest of a checkpoint directory: which generation is current and
/// what run it belongs to.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Snapshot container format version (see [`crate::snapshot`]).
    pub format_version: u32,
    /// Simulated time of the cut, nanoseconds.
    pub time_ns: u64,
    /// Number of logical processes; a resume must use the same count.
    pub partitions: u32,
    /// Conservative window used by the checkpointing run, nanoseconds.
    pub window_ns: u64,
    /// Config fingerprint (canonical JSON of the [`SimConfig`]); a resume
    /// must be built from an identical configuration.
    pub config: String,
    /// Sub-directory holding this generation's `part-<i>.snap` files.
    pub generation: String,
}

/// Read and parse `dir`'s manifest.
pub fn read_manifest(dir: &Path) -> Result<CheckpointManifest, SnapshotError> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE))?;
    serde_json::from_str(&text)
        .map_err(|e| SnapshotError::Corrupt(format!("checkpoint manifest: {e}")))
}

/// Where and how often a partitioned run writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPlan {
    /// Checkpoint directory; created if missing. Holds `MANIFEST.json`
    /// plus one `gen-<nanos>/` sub-directory per retained generation.
    pub dir: PathBuf,
    /// Simulated-time interval between checkpoints. Cuts land on the first
    /// window barrier at or after each due time.
    pub every: SimDuration,
    /// How many generations to retain (values below 1 behave as 1). The
    /// manifest always points at the newest; keeping more gives
    /// `dcn diverge` a ladder of restore points near a divergence.
    pub keep: usize,
}

/// Cadence of adaptive fidelity-tier epochs in a partitioned run.
///
/// At every `every_windows`-th window barrier the LPs exchange per-cluster
/// drift scores (each cluster's traffic is only observed by its owning
/// LP), then *every* LP hands the identical merged vector to its batched
/// model via `Simulation::tier_epoch`. Because the model replicas start
/// identical and see identical inputs at identical barriers, their tier
/// assignments stay in lockstep — the tier schedule is a pure function of
/// the trajectory, hence invariant to the partition count. Transitions
/// happen only at these barriers, with batched inference settled, so
/// checkpoints cut at (or after) a transition restore byte-identically.
#[derive(Clone, Copy, Debug)]
pub struct TierPlan {
    /// Re-evaluate tiers every this many conservative windows (>= 1).
    /// Epoch `k` fires at the barrier where `t = k * every_windows *
    /// window` — derived from simulated time, so a resumed run lands on
    /// the same epoch barriers as an uninterrupted one.
    pub every_windows: u64,
}

/// Flight-recorder plan for a partitioned run (DESIGN.md §14): how much
/// history each LP keeps, where post-mortems land, and the SLOs whose
/// breach triggers an automatic dump.
#[derive(Clone, Debug, Default)]
pub struct FlightPlan {
    /// Ring capacity per LP, in events (clamped to at least 1).
    pub capacity: usize,
    /// Directory for automatic post-mortem dumps (panic, SLO breach).
    /// `None` disables file dumps; the ring still folds into the obs
    /// report at the end of a successful run.
    pub dump_dir: Option<PathBuf>,
    /// Wall-clock throughput floor in simulator events per second,
    /// checked at window barriers over ≥250 ms samples. The first breach
    /// dumps the ring; the run continues.
    pub min_events_per_sec: Option<f64>,
    /// Per-cluster drift ceiling, checked at tier epochs (requires a
    /// [`TierPlan`]). The first breach dumps the ring; the run continues.
    pub max_drift: Option<f64>,
}

/// Everything optional about a partitioned run, in one place.
/// [`run_partitioned_resumable`] is the positional-argument subset kept
/// for existing callers; new knobs only land here.
#[derive(Clone, Debug, Default)]
pub struct PdesRunOpts {
    /// Enable the engine observability layer on every LP (window spans,
    /// event counters, queue stats, tier telemetry). Also implied by
    /// `digest_stride`.
    pub obs: bool,
    /// Write checkpoints per this plan.
    pub checkpoint: Option<CheckpointPlan>,
    /// Resume from the manifest in this checkpoint directory.
    pub resume_from: Option<PathBuf>,
    /// Resume from this specific generation sub-directory instead of the
    /// manifest's current one (the name encodes the cut time). Ignored
    /// without `resume_from`. This is how `dcn diverge` replays from the
    /// last checkpoint *before* a divergence.
    pub resume_generation: Option<String>,
    /// Adaptive fidelity-tier epochs.
    pub tiers: Option<TierPlan>,
    /// Stop at this simulated time instead of the configured duration
    /// (clamped to it). Replays use a barrier-aligned stop just past the
    /// window under investigation.
    pub stop_at: Option<SimTime>,
    /// Record a state digest every N true window barriers (absolute
    /// window indices that are multiples of N). `None` disables digests;
    /// enabling them forces obs on so the `digest.*` gauges that align
    /// two timelines are always exported.
    pub digest_stride: Option<u64>,
    /// Flight recorder + SLO dumps.
    pub flight: Option<FlightPlan>,
    /// Post-mortem drill: partition 0 panics while processing the window
    /// whose barrier index equals this value, exercising the same dump
    /// path a real fault would. Never set outside tests/drills.
    pub crash_at_window: Option<u64>,
}

fn generation_name(t: SimTime) -> String {
    format!("gen-{:020}", t.as_nanos())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Write one LP's post-mortem (reason, flight ring, digest timeline) as
/// JSON through the snapshot crate's atomic temp+rename, so a dump
/// interrupted by the very crash it is reporting can never leave a
/// half-written file shadowing a good one.
fn post_mortem_dump(sim: &Simulation, dir: &Path, part: usize, reason: &str, t: SimTime) {
    use serde_json::Value;
    let _ = fs::create_dir_all(dir);
    let flight: Vec<Value> = sim
        .flight_snapshot()
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("lp".to_string(), Value::U64(e.lp as u64)),
                ("sim_ns".to_string(), Value::U64(e.sim_ns)),
                ("kind".to_string(), Value::U64(e.kind as u64)),
                ("kind_name".to_string(), Value::Str(e.kind_name.to_string())),
                ("packet_id".to_string(), Value::U64(e.packet_id)),
                ("queue_depth".to_string(), Value::U64(e.queue_depth as u64)),
            ])
        })
        .collect();
    let (first, digests) = match sim.digest_timeline() {
        Some((f, d)) => (Value::U64(f), d.iter().map(|&x| Value::U64(x)).collect()),
        None => (Value::Null, Vec::new()),
    };
    let doc = Value::Object(vec![
        ("reason".to_string(), Value::Str(reason.to_string())),
        ("partition".to_string(), Value::U64(part as u64)),
        ("sim_time_ns".to_string(), Value::U64(t.as_nanos())),
        ("flight".to_string(), Value::Array(flight)),
        ("digest_first_window".to_string(), first),
        ("digests".to_string(), Value::Array(digests)),
    ]);
    if let Ok(text) = serde_json::to_string_pretty(&doc) {
        let _ = atomic_write(&dir.join(format!("postmortem-part-{part}.json")), text.as_bytes());
    }
}

/// Remove retired generations, keeping the newest `keep` (and always the
/// just-committed `current`). Generation names embed zero-padded
/// nanoseconds, so the lexicographic order is the chronological one.
/// Best-effort: a failure to delete old data never fails the run.
fn prune_generations(dir: &Path, current: &str, keep: usize) {
    let keep = keep.max(1);
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut gens: Vec<(String, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_str()?.to_string();
            name.starts_with("gen-").then(|| (name, e.path()))
        })
        .collect();
    gens.sort_unstable_by(|a, b| b.0.cmp(&a.0));
    for (name, path) in gens.into_iter().skip(keep) {
        if name != current {
            let _ = fs::remove_dir_all(path);
        }
    }
}

/// Run `cfg` across `partitions` logical processes on OS threads and return
/// the merged metrics. `make_factory` is invoked once per LP.
///
/// With `partitions == 1` this degenerates to (and exactly matches) the
/// sequential engine.
pub fn run_partitioned(
    cfg: SimConfig,
    partitions: usize,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
) -> Metrics {
    // Lookahead: every cross-partition hop takes at least one propagation
    // latency.
    run_partitioned_setup(cfg, partitions, cfg.link.latency, make_factory, &|_| {})
}

/// Number of tier epochs a run of `duration_s` at `window` granularity
/// fires under `plan` (the final, possibly-partial window never hosts an
/// epoch). Lets callers size accuracy-budget patience in epochs.
pub fn tier_epoch_count(duration_s: f64, window: SimDuration, plan: &TierPlan) -> u64 {
    let end = SimTime::from_secs_f64(duration_s) + SimDuration::from_nanos(1);
    let stride = window.as_nanos().saturating_mul(plan.every_windows.max(1));
    if stride == 0 {
        return 0;
    }
    // Epoch k fires at t = k * stride while t < end.
    (end.as_nanos().saturating_sub(1)) / stride
}

/// [`run_partitioned`] with an explicit lookahead `window` and a per-LP
/// `setup` hook, run on each freshly built engine before its partition is
/// assigned. This is how composed simulations enter PDES mode: the hook
/// installs the cluster models (every LP installs the full set; ownership
/// decides which ones actually see traffic), and the window shrinks to
/// `min(link latency, model latency floor)` because a batched Mimic's
/// re-injections can land on foreign core switches as little as one
/// latency floor after their window began.
pub fn run_partitioned_setup(
    cfg: SimConfig,
    partitions: usize,
    window: SimDuration,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
    setup: &(dyn Fn(&mut Simulation) + Sync),
) -> Metrics {
    run_partitioned_resumable(cfg, partitions, window, make_factory, setup, None, None, None)
        .expect("no checkpoint I/O requested, so no snapshot error can occur")
}

/// [`run_partitioned_setup`] with crash resilience: optionally write a
/// consistent cross-LP checkpoint every `checkpoint.every` of simulated
/// time, and/or start from the cut recorded in `resume_from` instead of
/// `t = 0`.
///
/// Checkpoints are cut at window barriers, where every LP has imported all
/// remote arrivals for past windows — the per-LP snapshots therefore
/// jointly describe the exact global state the run would reach at that
/// simulated time, and a resumed run's trajectory (and final metrics) are
/// bit-identical to an uninterrupted one. Each generation directory is
/// populated with atomically-written `part-<i>.snap` files first; the
/// manifest rename is the commit point, so a crash at any instant (even
/// SIGKILL mid-checkpoint) leaves the directory resumable from the last
/// complete generation.
#[allow(clippy::too_many_arguments)]
pub fn run_partitioned_resumable(
    cfg: SimConfig,
    partitions: usize,
    window: SimDuration,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
    setup: &(dyn Fn(&mut Simulation) + Sync),
    checkpoint: Option<&CheckpointPlan>,
    resume_from: Option<&Path>,
    tiers: Option<&TierPlan>,
) -> Result<Metrics, SnapshotError> {
    let opts = PdesRunOpts {
        checkpoint: checkpoint.cloned(),
        resume_from: resume_from.map(Path::to_path_buf),
        tiers: tiers.copied(),
        ..PdesRunOpts::default()
    };
    run_partitioned_opts(cfg, partitions, window, make_factory, setup, &opts)
}

/// [`run_partitioned_resumable`] driven by a [`PdesRunOpts`]: adds state
/// digests, the flight recorder with SLO-triggered post-mortems, early
/// stop, generation-pinned resume, and the crash drill. The extra
/// machinery costs nothing when the corresponding option is `None` — the
/// hot loop sees one `Option` check per window per feature.
pub fn run_partitioned_opts(
    cfg: SimConfig,
    partitions: usize,
    window: SimDuration,
    make_factory: &(dyn Fn() -> Box<dyn TransportFactory> + Sync),
    setup: &(dyn Fn(&mut Simulation) + Sync),
    opts: &PdesRunOpts,
) -> Result<Metrics, SnapshotError> {
    assert!(partitions >= 1);
    let topo = FatTree::new(cfg.topo);
    let owner = Arc::new(partition_by_cluster(&topo, partitions));
    let checkpoint = opts.checkpoint.as_ref();
    let tiers = opts.tiers.as_ref();
    let digest_stride = opts.digest_stride.map(|s| s.max(1));
    let flight_plan = opts.flight.as_ref();
    let dump_dir = flight_plan.and_then(|f| f.dump_dir.as_deref());
    let slo_floor = flight_plan.and_then(|f| f.min_events_per_sec);
    let drift_ceiling = flight_plan.and_then(|f| f.max_drift);
    if let Some(plan) = tiers {
        assert!(plan.every_windows >= 1, "zero-window tier epochs");
    }
    // Epoch stride in simulated nanoseconds; epoch barriers are the window
    // barriers where `t` is a multiple of this.
    let epoch_stride_ns =
        tiers.map(|plan| window.as_nanos().saturating_mul(plan.every_windows));
    // Cross-LP drift exchange for tier epochs: each LP writes the scores
    // of the clusters it observes (Some-wins), all read the merged vector
    // after a barrier.
    let drift_slots: Mutex<Vec<Option<f64>>> =
        Mutex::new(vec![None; cfg.topo.clusters as usize]);
    let drift_slots = &drift_slots;

    assert!(window > SimDuration::ZERO, "zero lookahead breaks conservative PDES");
    let mut end = SimTime::from_secs_f64(cfg.duration_s) + SimDuration::from_nanos(1);
    if let Some(stop) = opts.stop_at {
        end = end.min(stop);
    }

    if let Some(plan) = checkpoint {
        assert!(plan.every > SimDuration::ZERO, "zero checkpoint interval");
        fs::create_dir_all(&plan.dir)?;
    }

    // Validate the resume target up front, in one place: manifest shape,
    // partition count, and configuration must all match before any LP
    // thread is spawned.
    let resume: Option<(SimTime, PathBuf)> = match opts.resume_from.as_deref() {
        None => None,
        Some(dir) => {
            let manifest = read_manifest(dir)?;
            if manifest.partitions != partitions as u32 {
                return Err(SnapshotError::Corrupt(format!(
                    "checkpoint was taken with {} partitions, resuming with {partitions}",
                    manifest.partitions
                )));
            }
            let fp = serde_json::to_string(&cfg)
                .map_err(|e| SnapshotError::Corrupt(format!("config fingerprint: {e}")))?;
            if manifest.config != fp {
                return Err(SnapshotError::Corrupt(
                    "checkpoint belongs to a different simulation configuration".into(),
                ));
            }
            // A pinned generation overrides the manifest's current one; its
            // cut time is encoded in the directory name.
            let (t_ns, gen) = match &opts.resume_generation {
                None => (manifest.time_ns, manifest.generation.clone()),
                Some(g) => {
                    let nanos = g
                        .strip_prefix("gen-")
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| {
                            SnapshotError::Corrupt(format!(
                                "generation name `{g}` does not encode a cut time"
                            ))
                        })?;
                    (nanos, g.clone())
                }
            };
            let gen_dir = dir.join(&gen);
            if !gen_dir.is_dir() {
                return Err(SnapshotError::Corrupt(format!(
                    "checkpoint generation `{gen}` is not present in {}",
                    dir.display()
                )));
            }
            Some((SimTime(t_ns), gen_dir))
        }
    };
    let resume = &resume;

    let channels: Vec<(Sender<RemoteMsg>, Receiver<RemoteMsg>)> =
        (0..partitions).map(|_| channel()).collect();
    let senders: Vec<Sender<RemoteMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let mut receivers: Vec<Option<Receiver<RemoteMsg>>> =
        channels.into_iter().map(|(_, r)| Some(r)).collect();

    let barrier = Arc::new(Barrier::new(partitions));
    // First checkpoint or restore failure wins; `abort` is only ever set
    // *before* a barrier and read *after* one, so every LP observes the
    // same value at the same loop position and barrier counts stay
    // matched (no LP can deadlock waiting on one that already returned).
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<SnapshotError>> = Mutex::new(None);
    let record_err = |e: SnapshotError| {
        let mut slot = first_err.lock().expect("error mutex");
        slot.get_or_insert(e);
        abort.store(true, Ordering::SeqCst);
    };
    let crash_at = opts.crash_at_window;
    let obs_flag = opts.obs;
    let window_ns = window.as_nanos();

    let merged = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(partitions);
        for (part, receiver) in receivers.iter_mut().enumerate() {
            let owner = owner.clone();
            let senders = senders.clone();
            let rx = receiver.take().expect("receiver taken once");
            let barrier = barrier.clone();
            let record_err = &record_err;
            let abort = &abort;
            handles.push(scope.spawn(move || -> Option<Metrics> {
                let mut sim = Simulation::with_transport(cfg, make_factory());
                setup(&mut sim);
                sim.set_partition(owner.clone(), part as u8);
                if obs_flag && !sim.obs_enabled() {
                    sim.enable_obs();
                }
                if let Some(stride) = digest_stride {
                    // Digests imply obs: the `digest.*` gauges are how two
                    // timelines get aligned, so they must always export.
                    // Light mode unless full obs was requested — per-event
                    // wall timing costs tens of percent on short-event
                    // workloads, which would sink the <2% diagnostics
                    // budget (BENCH obs section).
                    if !sim.obs_enabled() {
                        sim.enable_obs_light();
                    }
                    sim.enable_digests();
                    sim.obs_gauge_set("digest.window_ns", window_ns as f64);
                    sim.obs_gauge_set("digest.stride", stride as f64);
                }
                if let Some(fp) = flight_plan {
                    sim.enable_flight_recorder(fp.capacity);
                }
                if let (Some(plan), true) = (tiers, sim.obs_enabled()) {
                    sim.obs_gauge_set(
                        "tier.epochs_total",
                        tier_epoch_count(cfg.duration_s, window, plan) as f64,
                    );
                    sim.obs_gauge_set("tier.clusters", cfg.topo.clusters as f64);
                }
                let mut t = SimTime::ZERO;
                if let Some((resume_t, gen_dir)) = resume {
                    let restored = read_snapshot_file(&gen_dir.join(format!("part-{part}.snap")))
                        .and_then(|payload| sim.restore_snapshot(&payload));
                    match restored {
                        Ok(()) => t = *resume_t,
                        Err(e) => record_err(e),
                    }
                    barrier.wait();
                    if abort.load(Ordering::SeqCst) {
                        return None;
                    }
                }
                let mut next_ckpt = checkpoint.map(|plan| t + plan.every);
                // Driver-level obs accounting (active only when the setup
                // hook enabled obs on the engine): barrier stall time and
                // cross-partition message counts, folded into the engine's
                // report so they merge with everything else at the join.
                let obs_on = sim.obs_enabled();
                // Per-window clock reads (barrier stall timing) only under
                // full/timed obs; light mode keeps the loop clock-free.
                let obs_timed = sim.obs_timing_enabled();
                sim.obs_span_begin("pdes.lp", "pdes");
                let mut barrier_wait_ns = 0u64;
                let (mut exported, mut imported) = (0u64, 0u64);
                // Throughput SLO state: (wall clock of last sample, events
                // processed at that instant, already dumped?).
                let mut slo = slo_floor
                    .map(|_| (std::time::Instant::now(), sim.metrics().events_processed, false));
                let mut drift_dumped = false;
                // Digest alignment trackers (divisions only here, once):
                // `t` is window-aligned at start and resume, so the first
                // digest-eligible barrier is the next multiple of `stride`
                // strictly after the current window index.
                let mut widx = t.as_nanos() / window_ns;
                let mut next_aligned_ns = t.as_nanos() + window_ns;
                let mut next_digest_widx = digest_stride.map_or(0, |s| (widx / s + 1) * s);
                while t < end {
                    let t_next = (t + window).min(end);
                    // The window body runs under `catch_unwind` so a panic
                    // (a real engine fault or the crash drill) dumps the
                    // flight ring, records a typed error, and keeps this
                    // LP's barrier count matched with its siblings instead
                    // of deadlocking them.
                    let drill = matches!(crash_at, Some(cw)
                        if part == 0 && t.as_nanos() / window_ns + 1 == cw);
                    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if drill {
                            panic!("crash drill: window {}", t.as_nanos() / window_ns + 1);
                        }
                        sim.run_window(t_next)
                    }));
                    let outbox = match ran {
                        Ok(out) => out,
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            if let Some(dir) = dump_dir {
                                post_mortem_dump(&sim, dir, part, &format!("panic: {msg}"), t);
                            }
                            record_err(SnapshotError::Corrupt(format!(
                                "LP {part} panicked in window ending at {} ns: {msg}",
                                t_next.as_nanos()
                            )));
                            // Match the sibling LPs' two window barriers,
                            // then every LP returns at the abort check.
                            barrier.wait();
                            barrier.wait();
                            return None;
                        }
                    };
                    if obs_on {
                        exported += outbox.len() as u64;
                    }
                    for (time, node, pkt) in outbox {
                        let dest = owner[node.0 as usize] as usize;
                        senders[dest].send((time, node, pkt)).expect("LP alive");
                    }
                    if obs_timed {
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                    while let Ok((time, node, pkt)) = rx.try_recv() {
                        if obs_on {
                            imported += 1;
                        }
                        sim.inject_arrival(time, node, pkt);
                    }
                    if obs_timed {
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                    // A panic in any sibling this window set `abort` before
                    // the first barrier; every LP sees it here, after the
                    // second, and returns at the same loop position.
                    if abort.load(Ordering::SeqCst) {
                        return None;
                    }
                    t = t_next;
                    // State digest at true window barriers (DESIGN.md §14):
                    // every remote arrival for past windows is imported, so
                    // the per-LP digests sum to a partition-count-invariant
                    // global digest. Indices are absolute, so resumed and
                    // uninterrupted timelines align. Alignment and stride
                    // are tracked by increment-and-compare: two u64
                    // divisions here once cost ~4% of a window-dominated
                    // run (windows can outnumber events).
                    if let Some(stride) = digest_stride {
                        let nanos = t.as_nanos();
                        if nanos == next_aligned_ns {
                            widx += 1;
                            next_aligned_ns += window_ns;
                            if widx == next_digest_widx {
                                next_digest_widx += stride;
                                sim.record_window_digest(widx);
                            }
                        }
                    }
                    // Throughput SLO: sample events/s over ≥250 ms of wall
                    // clock; the first breach dumps the flight ring.
                    if let Some((last_at, last_events, dumped)) = slo.as_mut() {
                        let dt = last_at.elapsed().as_secs_f64();
                        if dt >= 0.25 {
                            let now_events = sim.metrics().events_processed;
                            let rate = (now_events - *last_events) as f64 / dt;
                            let floor = slo_floor.expect("slo state implies a floor");
                            if rate < floor && !*dumped {
                                *dumped = true;
                                sim.obs_counter_add("flight.slo_breaches", 1);
                                if let Some(dir) = dump_dir {
                                    post_mortem_dump(
                                        &sim,
                                        dir,
                                        part,
                                        &format!(
                                            "slo: {rate:.0} events/s below floor {floor:.0}"
                                        ),
                                        t,
                                    );
                                }
                            }
                            *last_at = std::time::Instant::now();
                            *last_events = now_events;
                        }
                    }
                    // Tier epoch: all LPs derive the same due condition from
                    // t, exchange drift, and apply the same decision. Runs
                    // before any checkpoint cut at this same t, so snapshots
                    // capture post-transition state and a resume never
                    // re-runs an epoch.
                    if let Some(stride) = epoch_stride_ns {
                        if t < end && stride > 0 && t.as_nanos().is_multiple_of(stride) {
                            let epoch = t.as_nanos() / stride;
                            let local = sim.cluster_drifts();
                            {
                                let mut slots = drift_slots.lock().expect("drift slots");
                                for (slot, l) in slots.iter_mut().zip(&local) {
                                    if l.is_some() {
                                        *slot = *l;
                                    }
                                }
                            }
                            barrier.wait();
                            let merged = drift_slots.lock().expect("drift slots").clone();
                            // Drift-ceiling SLO: the merged vector is the
                            // same in every LP, so each dumps (its own
                            // ring) on the same epoch.
                            if let Some(ceiling) = drift_ceiling {
                                let breach = merged
                                    .iter()
                                    .enumerate()
                                    .find_map(|(c, d)| d.filter(|d| *d > ceiling).map(|d| (c, d)));
                                if let Some((c, d)) = breach {
                                    if !drift_dumped {
                                        drift_dumped = true;
                                        sim.obs_counter_add("flight.slo_breaches", 1);
                                        if let Some(dir) = dump_dir {
                                            post_mortem_dump(
                                                &sim,
                                                dir,
                                                part,
                                                &format!(
                                                    "slo: cluster {c} drift {d:.4} above ceiling {ceiling:.4}"
                                                ),
                                                t,
                                            );
                                        }
                                    }
                                }
                            }
                            // A cluster's nodes all live on partition
                            // `cluster % partitions` (see
                            // `partition_by_cluster`): record its switches
                            // there and nowhere else.
                            sim.tier_epoch(epoch, &merged, |c| c as usize % partitions == part);
                            barrier.wait();
                            // Reset the exchange for the next epoch; the
                            // trailing barrier keeps fast LPs from publishing
                            // into a vector part 0 has not cleared yet.
                            if part == 0 {
                                let mut slots = drift_slots.lock().expect("drift slots");
                                slots.iter_mut().for_each(|s| *s = None);
                            }
                            barrier.wait();
                        }
                    }
                    // All LPs share t and the plan, so they branch (and hit
                    // the checkpoint barriers) in lockstep.
                    let due = matches!(next_ckpt, Some(due) if t >= due) && t < end;
                    if due {
                        let plan = checkpoint.expect("due implies a plan");
                        let gen = generation_name(t);
                        let gen_dir = plan.dir.join(&gen);
                        let written = fs::create_dir_all(&gen_dir)
                            .map_err(SnapshotError::from)
                            .and_then(|()| sim.save_snapshot())
                            .and_then(|payload| {
                                write_snapshot_file(
                                    &gen_dir.join(format!("part-{part}.snap")),
                                    &payload,
                                )
                            });
                        if let Err(e) = written {
                            record_err(e);
                        }
                        barrier.wait();
                        if abort.load(Ordering::SeqCst) {
                            return None;
                        }
                        if part == 0 {
                            // Every part file of this generation is durable;
                            // commit it.
                            let manifest = CheckpointManifest {
                                format_version: crate::snapshot::FORMAT_VERSION,
                                time_ns: t.as_nanos(),
                                partitions: partitions as u32,
                                window_ns: window.as_nanos(),
                                config: serde_json::to_string(&cfg)
                                    .expect("config serialized once already"),
                                generation: gen.clone(),
                            };
                            let committed = serde_json::to_string(&manifest)
                                .map_err(|e| {
                                    SnapshotError::Corrupt(format!("checkpoint manifest: {e}"))
                                })
                                .and_then(|text| {
                                    atomic_write(&plan.dir.join(MANIFEST_FILE), text.as_bytes())
                                        .map_err(SnapshotError::from)
                                });
                            match committed {
                                Ok(()) => prune_generations(&plan.dir, &gen, plan.keep),
                                Err(e) => record_err(e),
                            }
                        }
                        barrier.wait();
                        if abort.load(Ordering::SeqCst) {
                            return None;
                        }
                        next_ckpt = Some(t + plan.every);
                    }
                }
                sim.obs_span_end();
                if obs_on {
                    sim.obs_counter_add("pdes.barrier_wait_ns", barrier_wait_ns);
                    sim.obs_counter_add("pdes.msgs_exported", exported);
                    sim.obs_counter_add("pdes.msgs_imported", imported);
                    sim.obs_counter_add("pdes.partitions", 1);
                }
                Some(sim.take_metrics())
            }));
        }
        let mut merged: Option<Metrics> = None;
        for h in handles {
            let Some(m) = h.join().expect("LP panicked") else {
                continue;
            };
            match &mut merged {
                None => merged = Some(m),
                Some(acc) => acc.merge(m),
            }
        }
        merged
    });

    if let Some(e) = first_err.into_inner().expect("error mutex") {
        return Err(e);
    }
    Ok(merged.expect("at least one partition"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::testing::FixedWindowFactory;

    fn cfg() -> SimConfig {
        let mut c = SimConfig::small_scale();
        c.topo.clusters = 4;
        c.duration_s = 0.2;
        c.seed = 11;
        c
    }

    fn factory() -> Box<dyn TransportFactory> {
        Box::new(FixedWindowFactory::default())
    }

    #[test]
    fn partition_map_covers_all_nodes() {
        let topo = FatTree::new(cfg().topo);
        let owner = partition_by_cluster(&topo, 3);
        assert_eq!(owner.len(), topo.params.num_nodes() as usize);
        assert!(owner.iter().all(|&p| p < 3));
        // All nodes of the same cluster share a partition.
        for c in 0..4 {
            let expect = owner[topo.tor(c, 0).0 as usize];
            assert_eq!(owner[topo.host(c, 1, 1).0 as usize], expect);
            assert_eq!(owner[topo.agg(c, 1).0 as usize], expect);
        }
    }

    #[test]
    fn single_partition_matches_sequential() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 1, &factory);
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.queue_drops, m_par.queue_drops);
    }

    #[test]
    fn two_partitions_match_sequential_exactly() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 2, &factory);
        assert_eq!(m_seq.flows_started(), m_par.flows_started());
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.queue_drops, m_par.queue_drops);
        // Per-flow completion times must agree bit-for-bit.
        for (id, rec) in &m_seq.flows {
            let other = m_par.flows.get(id).expect("flow missing in parallel run");
            assert_eq!(rec.end, other.end, "FCT mismatch for {id:?}");
        }
    }

    #[test]
    fn obs_merges_across_partitions() {
        let m_par = run_partitioned_setup(cfg(), 2, cfg().link.latency, &factory, &|sim| {
            sim.enable_obs()
        });
        let m_seq = run_partitioned_setup(cfg(), 1, cfg().link.latency, &factory, &|sim| {
            sim.enable_obs()
        });
        // Obs on must not perturb the trajectory.
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        let rp = m_par.obs.as_ref().expect("obs report present");
        let rs = m_seq.obs.as_ref().expect("obs report present");
        // Event counts are trajectory properties: identical after merge.
        assert_eq!(rp.counter("sim.events.total"), rs.counter("sim.events.total"));
        assert_eq!(rp.counter("pdes.partitions"), 2);
        assert_eq!(rs.counter("pdes.partitions"), 1);
        // Every exported message is imported by its destination partition.
        assert_eq!(rp.counter("pdes.msgs_exported"), rp.counter("pdes.msgs_imported"));
        assert!(rp.counter("pdes.msgs_exported") > 0, "no cross-partition traffic");
        // Both partitions contributed window spans on distinct tracks.
        let tracks: std::collections::HashSet<u32> =
            rp.spans.iter().map(|s| s.track).collect();
        assert_eq!(tracks.len(), 2);
        assert_eq!(rp.counter("sim.windows"), 2 * rs.counter("sim.windows"));
    }

    fn temp_ckpt_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcn-pdes-ckpt-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_run_matches_uninterrupted() {
        let dir = temp_ckpt_dir("match");
        let m_full = run_partitioned(cfg(), 2, &factory);
        let plan = CheckpointPlan {
            dir: dir.clone(),
            every: SimDuration::from_nanos(50_000_000),
            keep: 1,
        };
        let m_ck = run_partitioned_resumable(
            cfg(),
            2,
            cfg().link.latency,
            &factory,
            &|_| {},
            Some(&plan),
            None,
            None,
        )
        .expect("checkpointed run");
        // Writing checkpoints must not perturb the trajectory.
        assert_eq!(m_ck.canonical_bytes(), m_full.canonical_bytes());
        // The directory holds a committed manifest pointing at a complete
        // generation.
        let manifest = read_manifest(&dir).expect("manifest committed");
        assert_eq!(manifest.partitions, 2);
        let gen_dir = dir.join(&manifest.generation);
        assert!(gen_dir.join("part-0.snap").is_file());
        assert!(gen_dir.join("part-1.snap").is_file());
        // Resuming from the last checkpoint replays the tail bit-identically:
        // final metrics equal the uninterrupted run's.
        let m_res = run_partitioned_resumable(
            cfg(),
            2,
            cfg().link.latency,
            &factory,
            &|_| {},
            None,
            Some(&dir),
            None,
        )
        .expect("resumed run");
        assert_eq!(m_res.canonical_bytes(), m_full.canonical_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_wrong_partition_count_and_config() {
        let dir = temp_ckpt_dir("reject");
        let plan = CheckpointPlan {
            dir: dir.clone(),
            every: SimDuration::from_nanos(50_000_000),
            keep: 1,
        };
        run_partitioned_resumable(
            cfg(),
            2,
            cfg().link.latency,
            &factory,
            &|_| {},
            Some(&plan),
            None,
            None,
        )
        .expect("checkpointed run");
        // Wrong partition count: typed error, not a panic.
        let err = run_partitioned_resumable(
            cfg(),
            3,
            cfg().link.latency,
            &factory,
            &|_| {},
            None,
            Some(&dir),
            None,
        )
        .err()
        .expect("partition mismatch must be rejected");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
        // Different configuration: typed error.
        let mut other = cfg();
        other.seed ^= 1;
        let err = run_partitioned_resumable(
            other,
            2,
            cfg().link.latency,
            &factory,
            &|_| {},
            None,
            Some(&dir),
            None,
        )
        .err()
        .expect("config mismatch must be rejected");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
        // Missing directory: typed I/O error.
        let err = run_partitioned_resumable(
            cfg(),
            2,
            cfg().link.latency,
            &factory,
            &|_| {},
            None,
            Some(&dir.join("nope")),
            None,
        )
        .err()
        .expect("missing checkpoint must be rejected");
        assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_generations_are_pruned() {
        let dir = temp_ckpt_dir("prune");
        let plan = CheckpointPlan {
            dir: dir.clone(),
            every: SimDuration::from_nanos(40_000_000),
            keep: 1,
        };
        run_partitioned_resumable(
            cfg(),
            1,
            cfg().link.latency,
            &factory,
            &|_| {},
            Some(&plan),
            None,
            None,
        )
        .expect("checkpointed run");
        // A 0.2 s run with a 40 ms interval cuts several checkpoints; only
        // the committed generation survives.
        let gens: Vec<String> = fs::read_dir(&dir)
            .expect("dir exists")
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("gen-"))
            .collect();
        let manifest = read_manifest(&dir).expect("manifest committed");
        assert_eq!(gens, vec![manifest.generation]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_n_generations_retained_and_pinned_resume_replays() {
        let dir = temp_ckpt_dir("keepn");
        let plan = CheckpointPlan {
            dir: dir.clone(),
            every: SimDuration::from_nanos(40_000_000),
            keep: 2,
        };
        run_partitioned_resumable(
            cfg(),
            1,
            cfg().link.latency,
            &factory,
            &|_| {},
            Some(&plan),
            None,
            None,
        )
        .expect("checkpointed run");
        let mut gens: Vec<String> = fs::read_dir(&dir)
            .expect("dir exists")
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("gen-"))
            .collect();
        gens.sort();
        assert_eq!(gens.len(), 2, "keep=2 retains exactly two generations");
        let manifest = read_manifest(&dir).expect("manifest committed");
        assert_eq!(gens.last(), Some(&manifest.generation));
        // Pinning the *older* generation replays the longer tail to the
        // same final state as an uninterrupted run.
        let m_full = run_partitioned(cfg(), 1, &factory);
        let opts = PdesRunOpts {
            resume_from: Some(dir.clone()),
            resume_generation: Some(gens[0].clone()),
            ..PdesRunOpts::default()
        };
        let m_res =
            run_partitioned_opts(cfg(), 1, cfg().link.latency, &factory, &|_| {}, &opts)
                .expect("pinned resume");
        assert_eq!(m_res.canonical_bytes(), m_full.canonical_bytes());
        // A generation name that decodes to no directory is rejected.
        let opts = PdesRunOpts {
            resume_from: Some(dir.clone()),
            resume_generation: Some("gen-00000000000000000007".into()),
            ..PdesRunOpts::default()
        };
        let err = run_partitioned_opts(cfg(), 1, cfg().link.latency, &factory, &|_| {}, &opts)
            .err()
            .expect("missing generation must be rejected");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_at_truncates_the_run() {
        let m_full = run_partitioned(cfg(), 2, &factory);
        let opts = PdesRunOpts {
            stop_at: Some(SimTime::from_secs_f64(0.1)),
            ..PdesRunOpts::default()
        };
        let m_half = run_partitioned_opts(cfg(), 2, cfg().link.latency, &factory, &|_| {}, &opts)
            .expect("truncated run");
        assert!(m_half.events_processed < m_full.events_processed);
        assert!(m_half.events_processed > 0);
    }

    #[test]
    fn window_digests_are_partition_invariant() {
        let opts = PdesRunOpts {
            digest_stride: Some(4),
            ..PdesRunOpts::default()
        };
        let timelines: Vec<(Vec<u64>, f64)> = [1usize, 2]
            .iter()
            .map(|&p| {
                let m =
                    run_partitioned_opts(cfg(), p, cfg().link.latency, &factory, &|_| {}, &opts)
                        .expect("digested run");
                let r = m.obs.expect("digests imply an obs report");
                (
                    r.digests.get("digest.window").cloned().unwrap_or_default(),
                    r.gauges.get("digest.first_window").copied().unwrap_or(-1.0),
                )
            })
            .collect();
        assert!(!timelines[0].0.is_empty(), "digests were recorded");
        assert_eq!(timelines[0], timelines[1]);
    }

    #[test]
    fn crash_drill_dumps_flight_ring_and_fails_typed() {
        let dir = temp_ckpt_dir("drill");
        let opts = PdesRunOpts {
            flight: Some(FlightPlan {
                capacity: 64,
                dump_dir: Some(dir.clone()),
                ..FlightPlan::default()
            }),
            crash_at_window: Some(5),
            ..PdesRunOpts::default()
        };
        let err = run_partitioned_opts(cfg(), 2, cfg().link.latency, &factory, &|_| {}, &opts)
            .err()
            .expect("crash drill must fail the run");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
        let dump = fs::read_to_string(dir.join("postmortem-part-0.json"))
            .expect("post-mortem dump written");
        assert!(dump.contains("crash drill"), "reason recorded: {dump}");
        assert!(dump.contains("\"flight\""), "flight ring present");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn four_partitions_match_sequential() {
        let mut seq = Simulation::new(cfg());
        let m_seq = seq.run();
        let m_par = run_partitioned(cfg(), 4, &factory);
        assert_eq!(m_seq.total_delivered_bytes(), m_par.total_delivered_bytes());
        assert_eq!(m_seq.flows_completed(), m_par.flows_completed());
    }
}
