//! Deterministic random number generation and the sampling distributions the
//! simulator needs.
//!
//! The paper requires that "all randomness, including the seeds for
//! generating the traffic are configurable" (§8). Every random stream in the
//! simulator is a [`SplitMix64`] seeded from the run seed plus a structural
//! tag (host id, purpose), so adding clusters never perturbs the streams of
//! existing ones — a property the scale-independence experiments rely on.

use serde::{Deserialize, Serialize};

/// A SplitMix64 PRNG: tiny, fast, and with a well-understood output function.
///
/// SplitMix64 passes BigCrush for the statistical quality we need (workload
/// sampling) and, unlike stateful global RNGs, lets us derive independent
/// streams with [`SplitMix64::derive`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for (`seed`, `tag`) pairs.
    ///
    /// The tag is mixed through one SplitMix64 round so that streams with
    /// adjacent tags are decorrelated.
    pub fn derive(seed: u64, tag: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one value so `tag` and `tag+1` diverge immediately.
        let _ = g.next_u64();
        g
    }

    /// Current internal state, for checkpointing (see [`crate::snapshot`]).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrite the internal state, restoring a checkpointed stream.
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiplicative range reduction; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential with the given mean (inverse-CDF sampling).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box-Muller (one value per call; simple and exact).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Pareto with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u = 1.0 - self.next_f64(); // in (0, 1]
        xm / u.powf(1.0 / alpha)
    }
}

/// An empirical distribution specified by CDF breakpoints, sampled by
/// inverse transform with linear interpolation between breakpoints.
///
/// This is how the simulator encodes the heavy-tailed flow-size
/// distributions from the data center measurement literature the paper's
/// workloads come from (web search / data mining style).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// `(value, cumulative_probability)` pairs, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from `(value, cumulative probability)` breakpoints.
    ///
    /// # Panics
    /// If fewer than two points are given, probabilities are not
    /// non-decreasing in `[0, 1]` ending at 1.0, or values decrease.
    pub fn new(points: Vec<(f64, f64)>) -> EmpiricalCdf {
        assert!(points.len() >= 2, "need at least two CDF breakpoints");
        let mut prev = (f64::NEG_INFINITY, -1.0);
        for &(v, p) in &points {
            assert!(v >= prev.0, "CDF values must be non-decreasing");
            assert!(p >= prev.1, "CDF probabilities must be non-decreasing");
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0,1]");
            prev = (v, p);
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0"
        );
        EmpiricalCdf { points }
    }

    /// Inverse CDF at probability `u` in `[0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 <= p0 {
                    return v1;
                }
                let t = (u - p0) / (p1 - p0);
                return v0 + t * (v1 - v0);
            }
        }
        self.points.last().unwrap().0
    }

    /// Sample one value.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.quantile(rng.next_f64())
    }

    /// The mean of the piecewise-linear distribution (exact integral).
    pub fn mean(&self) -> f64 {
        let mut m = self.points[0].0 * self.points[0].1;
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            m += (p1 - p0) * 0.5 * (v0 + v1);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SplitMix64::derive(42, 0);
        let mut b = SplitMix64::derive(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = g.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean() {
        let mut g = SplitMix64::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut g = SplitMix64::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut g = SplitMix64::new(11);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| g.log_normal(1.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of log-normal is e^mu.
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median = {median}");
    }

    #[test]
    fn pareto_bounds() {
        let mut g = SplitMix64::new(13);
        for _ in 0..10_000 {
            assert!(g.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn empirical_cdf_quantiles() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (10.0, 0.5), (100.0, 1.0)]);
        assert_eq!(cdf.quantile(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 10.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert!((cdf.quantile(0.25) - 5.0).abs() < 1e-9);
        assert!((cdf.quantile(0.75) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_cdf_sample_mean() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]);
        let mut g = SplitMix64::new(17);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| cdf.sample(&mut g)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
        assert!((cdf.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "CDF must end")]
    fn cdf_must_end_at_one() {
        let _ = EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 0.9)]);
    }

    #[test]
    fn cdf_with_atom() {
        // A point mass at 4 between p=0.2 and p=0.6.
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (4.0, 0.2), (4.0, 0.6), (8.0, 1.0)]);
        assert_eq!(cdf.quantile(0.3), 4.0);
        assert_eq!(cdf.quantile(0.59), 4.0);
    }
}
