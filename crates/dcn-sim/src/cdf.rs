//! Empirical CDFs and the 1-Wasserstein distance.
//!
//! The paper compares distributions (FCT, throughput, RTT) between ground
//! truth and each approximation using the `W1` metric — the Earth Mover's
//! Distance, which for one-dimensional CDFs is
//! `W1 = ∫ |CDF_real(x) − CDF_mimic(x)| dx` (§7.2). Lower is better;
//! values are scale-dependent (they carry the units of the samples).

/// An empirical cumulative distribution function over observed samples.
#[derive(Clone, Debug)]
pub struct Ecdf {
    /// Sorted samples.
    samples: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are rejected).
    ///
    /// # Panics
    /// If any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { samples }
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `P[X <= x]`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Inverse CDF at probability `u` (nearest rank).
    pub fn quantile(&self, u: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of empty ECDF");
        let u = u.clamp(0.0, 1.0);
        let idx = ((u * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Borrow the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// The 1-Wasserstein distance between the empirical distributions of two
/// sample sets: the integral of the absolute difference of their ECDFs.
///
/// Computed exactly by sweeping the merged samples; `O((n+m) log(n+m))`.
/// Returns 0.0 when both sets are empty; if exactly one is empty the
/// distance is undefined and we return `f64::INFINITY` so callers notice.
pub fn wasserstein1(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());

    let na = sa.len() as f64;
    let nb = sb.len() as f64;
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut dist = 0.0;
    let mut prev_x = f64::NEG_INFINITY;
    while ia < sa.len() || ib < sb.len() {
        let x = match (sa.get(ia), sb.get(ib)) {
            (Some(&xa), Some(&xb)) => xa.min(xb),
            (Some(&xa), None) => xa,
            (None, Some(&xb)) => xb,
            (None, None) => unreachable!(),
        };
        if prev_x.is_finite() && x > prev_x {
            let fa = ia as f64 / na;
            let fb = ib as f64 / nb;
            dist += (fa - fb).abs() * (x - prev_x);
        }
        // Consume all samples equal to x from both sides.
        while ia < sa.len() && sa[ia] == x {
            ia += 1;
        }
        while ib < sb.len() && sb[ib] == x {
            ib += 1;
        }
        prev_x = x;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
    }

    #[test]
    fn ecdf_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.25), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn w1_identical_is_zero() {
        let a = vec![1.0, 2.0, 5.0, 9.0];
        assert_eq!(wasserstein1(&a, &a), 0.0);
    }

    #[test]
    fn w1_point_masses() {
        // Two unit point masses at 0 and at 3: W1 = 3.
        assert!((wasserstein1(&[0.0], &[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn w1_is_symmetric() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![0.5, 1.5, 2.5, 3.5];
        let d1 = wasserstein1(&a, &b);
        let d2 = wasserstein1(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn w1_known_value() {
        // a = {0, 1}, b = {0, 2}: CDFs differ by 0.5 on [1, 2) -> W1 = 0.5.
        let d = wasserstein1(&[0.0, 1.0], &[0.0, 2.0]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn w1_shift_equals_offset() {
        // Shifting a distribution by c moves it exactly c in W1.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
        let d = wasserstein1(&a, &b);
        assert!((d - 2.5).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn w1_different_sizes() {
        // {0,0} vs {0}: identical distributions despite different counts.
        assert_eq!(wasserstein1(&[0.0, 0.0], &[0.0]), 0.0);
    }

    #[test]
    fn w1_empty_vs_nonempty_is_infinite() {
        assert!(wasserstein1(&[], &[1.0]).is_infinite());
        assert_eq!(wasserstein1(&[], &[]), 0.0);
    }

    #[test]
    fn w1_triangle_inequality() {
        let a = vec![0.0, 1.0, 4.0];
        let b = vec![1.0, 2.0, 3.0];
        let c = vec![0.5, 2.5, 5.0];
        let ab = wasserstein1(&a, &b);
        let bc = wasserstein1(&b, &c);
        let ac = wasserstein1(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
