//! ECMP up-down routing over the FatTree.
//!
//! MimicNet assumes "packets follow a strict up-down routing" (§4.2):
//! a packet climbs only as high as necessary (ToR for intra-rack, Agg for
//! intra-cluster, Core for inter-cluster) and then descends, never bouncing
//! back up. Multipath choices (which aggregation switch, which core) are
//! resolved by per-flow ECMP hashing so a flow's packets share one path —
//! the property that lets MimicNet treat "core switch traversed" as a
//! deterministic, computable feature rather than something to learn (§5).

use crate::link::Dir;
use crate::packet::FlowId;
use crate::topology::{FatTree, LinkId, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// One forwarding decision: which link to take, in which direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Hop {
    pub link: LinkId,
    pub dir: Dir,
}

/// Deterministic per-flow hash for ECMP with a level salt so that the
/// agg-level and core-level choices of a flow are independent.
pub fn ecmp_hash(flow: FlowId, level: u64) -> u64 {
    let mut z = flow
        .0
        .wrapping_add(level.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless router: all forwarding tables are computed from the topology.
#[derive(Clone, Debug)]
pub struct Router {
    topo: FatTree,
}

impl Router {
    pub fn new(topo: FatTree) -> Router {
        Router { topo }
    }

    pub fn topo(&self) -> &FatTree {
        &self.topo
    }

    /// The aggregation switch index a flow's up-traffic uses within any
    /// cluster it ascends through.
    pub fn agg_choice(&self, flow: FlowId) -> u32 {
        (ecmp_hash(flow, 1) % self.topo.params.aggs_per_cluster as u64) as u32
    }

    /// The per-agg core index (`j`) a flow's inter-cluster traffic uses.
    pub fn core_choice(&self, flow: FlowId) -> u32 {
        (ecmp_hash(flow, 2) % self.topo.params.cores_per_agg as u64) as u32
    }

    /// The core switch an inter-cluster flow traverses. Combined with
    /// [`Router::agg_choice`], this fully determines the up path.
    pub fn core_for_flow(&self, flow: FlowId) -> NodeId {
        self.topo.core(self.agg_choice(flow), self.core_choice(flow))
    }

    /// Forward a packet of `flow` destined to host `dst`, currently at
    /// `node`. Returns the next hop.
    ///
    /// # Panics
    /// If invoked at the destination host itself (nothing to forward) or if
    /// the packet would violate up-down routing (a structural bug).
    pub fn route(&self, node: NodeId, flow: FlowId, dst: NodeId) -> Hop {
        let t = &self.topo;
        debug_assert_eq!(t.kind(dst), NodeKind::Host);
        let (dst_cluster, dst_rack, _) = t.host_coords(dst);
        match t.kind(node) {
            NodeKind::Host => {
                assert_ne!(node, dst, "routing a packet already at its destination");
                Hop {
                    link: t.host_link(node),
                    dir: Dir::Up,
                }
            }
            NodeKind::Tor => {
                let (c, r) = t.tor_coords(node);
                if c == dst_cluster && r == dst_rack {
                    // Descend to the destination host.
                    Hop {
                        link: t.host_link(dst),
                        dir: Dir::Down,
                    }
                } else {
                    // Ascend to the flow's chosen aggregation switch.
                    Hop {
                        link: t.tor_agg_link(c, r, self.agg_choice(flow)),
                        dir: Dir::Up,
                    }
                }
            }
            NodeKind::Agg => {
                let (c, a) = t.agg_coords(node);
                if c == dst_cluster {
                    // Descend to the destination rack's ToR.
                    Hop {
                        link: t.tor_agg_link(c, dst_rack, a),
                        dir: Dir::Down,
                    }
                } else {
                    // Ascend to the flow's chosen core.
                    Hop {
                        link: t.agg_core_link(c, a, self.core_choice(flow)),
                        dir: Dir::Up,
                    }
                }
            }
            NodeKind::Core => {
                let (a, j) = t.core_coords(node);
                // Descend into the destination cluster via the same
                // aggregation position this core is wired to.
                Hop {
                    link: t.agg_core_link(dst_cluster, a, j),
                    dir: Dir::Down,
                }
            }
        }
    }

    /// Like [`Router::route`], but excludes failed links from multipath
    /// choices. `down(l)` must return true for links that are currently
    /// unusable.
    ///
    /// Only *upward* ECMP hops (ToR→Agg, Agg→Core) have alternatives; when
    /// the flow's hashed choice is down, the next candidate in cyclic order
    /// is taken — the deterministic analogue of ECMP weight withdrawal.
    /// Structurally unique hops (host access links and every descending
    /// hop) are returned even when down: the packet stalls in that link's
    /// queue until repair, matching real store-and-forward behavior.
    ///
    /// Returns `Some((hop, rerouted))` where `rerouted` is true iff a
    /// non-default candidate was selected, or `None` when every candidate
    /// for an upward hop is down (the packet is unroutable and should be
    /// counted as a fault drop).
    pub fn route_avoiding(
        &self,
        node: NodeId,
        flow: FlowId,
        dst: NodeId,
        down: &dyn Fn(LinkId) -> bool,
    ) -> Option<(Hop, bool)> {
        let t = &self.topo;
        let (dst_cluster, dst_rack, _) = t.host_coords(dst);
        match t.kind(node) {
            NodeKind::Tor => {
                let (c, r) = t.tor_coords(node);
                if !(c == dst_cluster && r == dst_rack) {
                    let n = t.params.aggs_per_cluster;
                    let base = self.agg_choice(flow);
                    for k in 0..n {
                        let link = t.tor_agg_link(c, r, (base + k) % n);
                        if !down(link) {
                            return Some((Hop { link, dir: Dir::Up }, k != 0));
                        }
                    }
                    return None;
                }
            }
            NodeKind::Agg => {
                let (c, a) = t.agg_coords(node);
                if c != dst_cluster {
                    let n = t.params.cores_per_agg;
                    let base = self.core_choice(flow);
                    for k in 0..n {
                        let link = t.agg_core_link(c, a, (base + k) % n);
                        if !down(link) {
                            return Some((Hop { link, dir: Dir::Up }, k != 0));
                        }
                    }
                    return None;
                }
            }
            NodeKind::Host | NodeKind::Core => {}
        }
        Some((self.route(node, flow, dst), false))
    }

    /// The complete node path a flow's data packets take from `src` to
    /// `dst` (inclusive of both endpoints). Used by the flow-level
    /// simulator and by tests.
    pub fn path(&self, flow: FlowId, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let t = &self.topo;
        let mut path = vec![src];
        let mut node = src;
        let mut hops = 0;
        while node != dst {
            let hop = self.route(node, flow, dst);
            let (lo, hi) = t.link_ends(hop.link);
            node = match hop.dir {
                Dir::Up => hi,
                Dir::Down => lo,
            };
            path.push(node);
            hops += 1;
            assert!(hops <= 8, "path exceeded FatTree diameter; routing loop?");
        }
        path
    }

    /// The links a flow's data packets traverse (with directions).
    pub fn link_path(&self, flow: FlowId, src: NodeId, dst: NodeId) -> Vec<Hop> {
        let t = &self.topo;
        let mut hops = Vec::new();
        let mut node = src;
        while node != dst {
            let hop = self.route(node, flow, dst);
            let (lo, hi) = t.link_ends(hop.link);
            node = match hop.dir {
                Dir::Up => hi,
                Dir::Down => lo,
            };
            hops.push(hop);
            assert!(hops.len() <= 8, "routing loop");
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeParams;

    fn router() -> Router {
        Router::new(FatTree::new(FatTreeParams::new(4, 2, 2, 2, 2)))
    }

    #[test]
    fn intra_rack_path_is_host_tor_host() {
        let r = router();
        let t = r.topo().clone();
        let a = t.host(0, 0, 0);
        let b = t.host(0, 0, 1);
        let path = r.path(FlowId(5), a, b);
        assert_eq!(path, vec![a, t.tor(0, 0), b]);
    }

    #[test]
    fn intra_cluster_path_peaks_at_agg() {
        let r = router();
        let t = r.topo().clone();
        let a = t.host(1, 0, 0);
        let b = t.host(1, 1, 0);
        let path = r.path(FlowId(9), a, b);
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], a);
        assert_eq!(path[1], t.tor(1, 0));
        assert_eq!(t.kind(path[2]), NodeKind::Agg);
        assert_eq!(t.cluster_of(path[2]), Some(1));
        assert_eq!(path[3], t.tor(1, 1));
        assert_eq!(path[4], b);
    }

    #[test]
    fn inter_cluster_path_peaks_at_core() {
        let r = router();
        let t = r.topo().clone();
        let a = t.host(0, 1, 1);
        let b = t.host(3, 0, 0);
        let path = r.path(FlowId(1234), a, b);
        assert_eq!(path.len(), 7);
        assert_eq!(t.kind(path[3]), NodeKind::Core);
        assert_eq!(path[3], r.core_for_flow(FlowId(1234)));
        // Up then down: tiers are host,tor,agg,core,agg,tor,host.
        let kinds: Vec<NodeKind> = path.iter().map(|&n| t.kind(n)).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::Host,
                NodeKind::Tor,
                NodeKind::Agg,
                NodeKind::Core,
                NodeKind::Agg,
                NodeKind::Tor,
                NodeKind::Host
            ]
        );
    }

    #[test]
    fn flow_path_is_consistent_per_flow() {
        let r = router();
        let t = r.topo().clone();
        let a = t.host(0, 0, 0);
        let b = t.host(2, 1, 1);
        let p1 = r.path(FlowId(7), a, b);
        let p2 = r.path(FlowId(7), a, b);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ecmp_spreads_flows_across_cores() {
        let r = router();
        let cores = r.topo().params.num_cores();
        let mut counts = vec![0u32; cores as usize];
        for f in 0..1000u64 {
            let c = r.core_for_flow(FlowId(f));
            let (a, j) = r.topo().core_coords(c);
            counts[(a * r.topo().params.cores_per_agg + j) as usize] += 1;
        }
        // Every core should get roughly 1000/4 = 250 flows.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (150..350).contains(&c),
                "core {i} got {c} flows; ECMP is skewed"
            );
        }
    }

    #[test]
    fn route_avoiding_matches_route_when_healthy() {
        let r = router();
        let t = r.topo().clone();
        let a = t.host(0, 0, 0);
        let b = t.host(3, 1, 1);
        let flow = FlowId(77);
        let none_down = |_: LinkId| false;
        let mut node = a;
        while node != b {
            let hop = r.route(node, flow, b);
            let (avoided, rerouted) = r.route_avoiding(node, flow, b, &none_down).unwrap();
            assert_eq!(avoided, hop);
            assert!(!rerouted);
            let (lo, hi) = t.link_ends(hop.link);
            node = if hop.dir == Dir::Up { hi } else { lo };
        }
    }

    #[test]
    fn route_avoiding_takes_alternate_agg() {
        let r = router();
        let t = r.topo().clone();
        let src = t.host(0, 0, 0);
        let dst = t.host(1, 0, 0); // inter-cluster: ToR must ascend
        let flow = FlowId(11);
        let tor = t.tor(0, 0);
        let default_hop = r.route(tor, flow, dst);
        let dead = default_hop.link;
        let (hop, rerouted) = r
            .route_avoiding(tor, flow, dst, &|l| l == dead)
            .expect("an alternate agg exists");
        assert!(rerouted);
        assert_ne!(hop.link, dead);
        assert_eq!(hop.dir, Dir::Up);
        // All upward candidates down: unroutable.
        assert!(r.route_avoiding(tor, flow, dst, &|_| true).is_none());
        // The source host's access link is structurally unique: returned
        // even when down (packet stalls rather than drops).
        let (hop, rerouted) = r.route_avoiding(src, flow, dst, &|_| true).unwrap();
        assert_eq!(hop.link, t.host_link(src));
        assert!(!rerouted);
    }

    #[test]
    fn route_avoiding_takes_alternate_core() {
        let r = router();
        let t = r.topo().clone();
        let dst = t.host(2, 0, 0);
        let flow = FlowId(5);
        let agg = {
            // The agg the flow ascends through in cluster 0.
            t.agg(0, r.agg_choice(flow))
        };
        let default_hop = r.route(agg, flow, dst);
        let dead = default_hop.link;
        let (hop, rerouted) = r
            .route_avoiding(agg, flow, dst, &|l| l == dead)
            .expect("an alternate core exists");
        assert!(rerouted);
        assert_ne!(hop.link, dead);
        assert_eq!(hop.dir, Dir::Up);
    }

    #[test]
    fn ack_path_reverses_through_same_tiers() {
        // ECMP hashes on flow id only, so the reverse path uses the same
        // agg position/core choice — symmetric routing.
        let r = router();
        let t = r.topo().clone();
        let a = t.host(0, 0, 0);
        let b = t.host(1, 0, 0);
        let fwd = r.path(FlowId(42), a, b);
        let rev = r.path(FlowId(42), b, a);
        let mut fwd_rev = fwd.clone();
        fwd_rev.reverse();
        assert_eq!(rev, fwd_rev);
    }
}
