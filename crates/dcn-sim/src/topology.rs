//! FatTree topology construction and addressing.
//!
//! The canonical topology from §2 of the paper: hosts sit under Top-of-Rack
//! (ToR) switches; a *rack* is a ToR plus its hosts; a *cluster* is a group
//! of racks plus the cluster (aggregation) switches above them; clusters are
//! joined by core switches. Packets follow strict up-down routing.
//!
//! All identifiers are dense indices computed by formula, so the topology
//! needs no allocation-per-node and addressing is O(1). Crucially for
//! MimicNet, every *local* index (rack within cluster, server within rack,
//! cluster switch within cluster, core switch) is a **scalable feature**:
//! its range and meaning do not change as clusters are added (§5.3).

use serde::{Deserialize, Serialize};

/// A node (host or switch) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A unidirectional use of a link is identified by the link plus direction;
/// links themselves are identified densely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// What role a node plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    Host,
    Tor,
    Agg,
    Core,
}

/// Structural parameters of a FatTree.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FatTreeParams {
    /// Number of clusters, `N`.
    pub clusters: u32,
    /// Racks (ToRs) per cluster, `R`.
    pub racks_per_cluster: u32,
    /// Hosts per rack, `H`.
    pub hosts_per_rack: u32,
    /// Cluster (aggregation) switches per cluster, `A`.
    pub aggs_per_cluster: u32,
    /// Core switches attached to each aggregation switch.
    ///
    /// Core switch `a * cores_per_agg + j` connects to aggregation switch
    /// `a` of *every* cluster, giving full bisection connectivity.
    pub cores_per_agg: u32,
}

impl FatTreeParams {
    /// Validate and construct.
    ///
    /// # Panics
    /// If any dimension is zero or there are fewer than two clusters.
    pub fn new(
        clusters: u32,
        racks_per_cluster: u32,
        hosts_per_rack: u32,
        aggs_per_cluster: u32,
        cores_per_agg: u32,
    ) -> FatTreeParams {
        assert!(clusters >= 2, "a FatTree needs at least two clusters");
        assert!(racks_per_cluster > 0 && hosts_per_rack > 0);
        assert!(aggs_per_cluster > 0 && cores_per_agg > 0);
        FatTreeParams {
            clusters,
            racks_per_cluster,
            hosts_per_rack,
            aggs_per_cluster,
            cores_per_agg,
        }
    }

    /// Total hosts.
    pub fn num_hosts(&self) -> u32 {
        self.clusters * self.hosts_per_cluster()
    }

    /// Hosts in one cluster.
    pub fn hosts_per_cluster(&self) -> u32 {
        self.racks_per_cluster * self.hosts_per_rack
    }

    /// Total ToR switches.
    pub fn num_tors(&self) -> u32 {
        self.clusters * self.racks_per_cluster
    }

    /// Total aggregation switches.
    pub fn num_aggs(&self) -> u32 {
        self.clusters * self.aggs_per_cluster
    }

    /// Total core switches.
    pub fn num_cores(&self) -> u32 {
        self.aggs_per_cluster * self.cores_per_agg
    }

    /// Total nodes of all kinds.
    pub fn num_nodes(&self) -> u32 {
        self.num_hosts() + self.num_tors() + self.num_aggs() + self.num_cores()
    }

    /// Total links (host access + ToR-Agg fabric + Agg-Core fabric).
    pub fn num_links(&self) -> u32 {
        self.num_hosts()
            + self.num_tors() * self.aggs_per_cluster
            + self.num_aggs() * self.cores_per_agg
    }
}

/// A FatTree topology with O(1) formula-based addressing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FatTree {
    pub params: FatTreeParams,
    base_tor: u32,
    base_agg: u32,
    base_core: u32,
    base_toragg_link: u32,
    base_aggcore_link: u32,
}

impl FatTree {
    pub fn new(params: FatTreeParams) -> FatTree {
        let base_tor = params.num_hosts();
        let base_agg = base_tor + params.num_tors();
        let base_core = base_agg + params.num_aggs();
        let base_toragg_link = params.num_hosts();
        let base_aggcore_link = base_toragg_link + params.num_tors() * params.aggs_per_cluster;
        FatTree {
            params,
            base_tor,
            base_agg,
            base_core,
            base_toragg_link,
            base_aggcore_link,
        }
    }

    // ------------------------------------------------------------------
    // Node id construction
    // ------------------------------------------------------------------

    /// Host node id for `(cluster, rack, slot)`.
    pub fn host(&self, cluster: u32, rack: u32, slot: u32) -> NodeId {
        debug_assert!(cluster < self.params.clusters);
        debug_assert!(rack < self.params.racks_per_cluster);
        debug_assert!(slot < self.params.hosts_per_rack);
        NodeId(
            (cluster * self.params.racks_per_cluster + rack) * self.params.hosts_per_rack + slot,
        )
    }

    /// ToR node id for `(cluster, rack)`.
    pub fn tor(&self, cluster: u32, rack: u32) -> NodeId {
        NodeId(self.base_tor + cluster * self.params.racks_per_cluster + rack)
    }

    /// Aggregation switch node id for `(cluster, agg_index)`.
    pub fn agg(&self, cluster: u32, a: u32) -> NodeId {
        NodeId(self.base_agg + cluster * self.params.aggs_per_cluster + a)
    }

    /// Core switch node id for `(agg_index, j)` — the `j`-th core attached to
    /// aggregation position `agg_index`.
    pub fn core(&self, a: u32, j: u32) -> NodeId {
        NodeId(self.base_core + a * self.params.cores_per_agg + j)
    }

    // ------------------------------------------------------------------
    // Node id deconstruction
    // ------------------------------------------------------------------

    /// What kind of node an id refers to.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        if n.0 < self.base_tor {
            NodeKind::Host
        } else if n.0 < self.base_agg {
            NodeKind::Tor
        } else if n.0 < self.base_core {
            NodeKind::Agg
        } else {
            NodeKind::Core
        }
    }

    /// The cluster a host/ToR/Agg belongs to. Cores belong to none.
    pub fn cluster_of(&self, n: NodeId) -> Option<u32> {
        match self.kind(n) {
            NodeKind::Host => {
                Some(n.0 / (self.params.racks_per_cluster * self.params.hosts_per_rack))
            }
            NodeKind::Tor => Some((n.0 - self.base_tor) / self.params.racks_per_cluster),
            NodeKind::Agg => Some((n.0 - self.base_agg) / self.params.aggs_per_cluster),
            NodeKind::Core => None,
        }
    }

    /// `(cluster, rack, slot)` of a host.
    pub fn host_coords(&self, n: NodeId) -> (u32, u32, u32) {
        debug_assert_eq!(self.kind(n), NodeKind::Host);
        let slot = n.0 % self.params.hosts_per_rack;
        let global_rack = n.0 / self.params.hosts_per_rack;
        let rack = global_rack % self.params.racks_per_cluster;
        let cluster = global_rack / self.params.racks_per_cluster;
        (cluster, rack, slot)
    }

    /// `(cluster, rack)` of a ToR.
    pub fn tor_coords(&self, n: NodeId) -> (u32, u32) {
        debug_assert_eq!(self.kind(n), NodeKind::Tor);
        let i = n.0 - self.base_tor;
        (
            i / self.params.racks_per_cluster,
            i % self.params.racks_per_cluster,
        )
    }

    /// `(cluster, agg_index)` of an aggregation switch.
    pub fn agg_coords(&self, n: NodeId) -> (u32, u32) {
        debug_assert_eq!(self.kind(n), NodeKind::Agg);
        let i = n.0 - self.base_agg;
        (
            i / self.params.aggs_per_cluster,
            i % self.params.aggs_per_cluster,
        )
    }

    /// `(agg_index, j)` of a core switch.
    pub fn core_coords(&self, n: NodeId) -> (u32, u32) {
        debug_assert_eq!(self.kind(n), NodeKind::Core);
        let i = n.0 - self.base_core;
        (
            i / self.params.cores_per_agg,
            i % self.params.cores_per_agg,
        )
    }

    /// ToR serving a host.
    pub fn tor_of_host(&self, h: NodeId) -> NodeId {
        let (c, r, _) = self.host_coords(h);
        self.tor(c, r)
    }

    // ------------------------------------------------------------------
    // Links
    // ------------------------------------------------------------------

    /// Access link between a host and its ToR.
    pub fn host_link(&self, h: NodeId) -> LinkId {
        debug_assert_eq!(self.kind(h), NodeKind::Host);
        LinkId(h.0)
    }

    /// Fabric link between ToR `(cluster, rack)` and agg `(cluster, a)`.
    pub fn tor_agg_link(&self, cluster: u32, rack: u32, a: u32) -> LinkId {
        let tor_global = cluster * self.params.racks_per_cluster + rack;
        LinkId(self.base_toragg_link + tor_global * self.params.aggs_per_cluster + a)
    }

    /// Fabric link between agg `(cluster, a)` and its `j`-th core.
    pub fn agg_core_link(&self, cluster: u32, a: u32, j: u32) -> LinkId {
        let agg_global = cluster * self.params.aggs_per_cluster + a;
        LinkId(self.base_aggcore_link + agg_global * self.params.cores_per_agg + j)
    }

    /// The two endpoints of a link, `(lower_tier, upper_tier)`.
    pub fn link_ends(&self, l: LinkId) -> (NodeId, NodeId) {
        if l.0 < self.base_toragg_link {
            let host = NodeId(l.0);
            (host, self.tor_of_host(host))
        } else if l.0 < self.base_aggcore_link {
            let i = l.0 - self.base_toragg_link;
            let a = i % self.params.aggs_per_cluster;
            let tor_global = i / self.params.aggs_per_cluster;
            let rack = tor_global % self.params.racks_per_cluster;
            let cluster = tor_global / self.params.racks_per_cluster;
            (self.tor(cluster, rack), self.agg(cluster, a))
        } else {
            let i = l.0 - self.base_aggcore_link;
            let j = i % self.params.cores_per_agg;
            let agg_global = i / self.params.cores_per_agg;
            let a = agg_global % self.params.aggs_per_cluster;
            let cluster = agg_global / self.params.aggs_per_cluster;
            (self.agg(cluster, a), self.core(a, j))
        }
    }

    /// Whether a link is a host access link.
    pub fn is_host_link(&self, l: LinkId) -> bool {
        l.0 < self.base_toragg_link
    }

    /// Whether a link connects an aggregation switch to a core switch (the
    /// cluster's "interface facing the Core switches" — MimicNet's upper
    /// instrumentation juncture).
    pub fn is_agg_core_link(&self, l: LinkId) -> bool {
        l.0 >= self.base_aggcore_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FatTree {
        FatTree::new(FatTreeParams::new(4, 2, 3, 2, 2))
    }

    #[test]
    fn counts() {
        let t = small();
        assert_eq!(t.params.num_hosts(), 24);
        assert_eq!(t.params.num_tors(), 8);
        assert_eq!(t.params.num_aggs(), 8);
        assert_eq!(t.params.num_cores(), 4);
        assert_eq!(t.params.num_nodes(), 44);
        assert_eq!(t.params.num_links(), 24 + 16 + 16);
    }

    #[test]
    fn host_roundtrip() {
        let t = small();
        for c in 0..4 {
            for r in 0..2 {
                for s in 0..3 {
                    let h = t.host(c, r, s);
                    assert_eq!(t.kind(h), NodeKind::Host);
                    assert_eq!(t.host_coords(h), (c, r, s));
                    assert_eq!(t.cluster_of(h), Some(c));
                }
            }
        }
    }

    #[test]
    fn switch_roundtrips() {
        let t = small();
        for c in 0..4 {
            for r in 0..2 {
                let n = t.tor(c, r);
                assert_eq!(t.kind(n), NodeKind::Tor);
                assert_eq!(t.tor_coords(n), (c, r));
                assert_eq!(t.cluster_of(n), Some(c));
            }
            for a in 0..2 {
                let n = t.agg(c, a);
                assert_eq!(t.kind(n), NodeKind::Agg);
                assert_eq!(t.agg_coords(n), (c, a));
            }
        }
        for a in 0..2 {
            for j in 0..2 {
                let n = t.core(a, j);
                assert_eq!(t.kind(n), NodeKind::Core);
                assert_eq!(t.core_coords(n), (a, j));
                assert_eq!(t.cluster_of(n), None);
            }
        }
    }

    #[test]
    fn node_ids_are_dense_and_disjoint() {
        let t = small();
        let mut seen = vec![false; t.params.num_nodes() as usize];
        let mut mark = |n: NodeId| {
            assert!(!seen[n.0 as usize], "duplicate node id {n:?}");
            seen[n.0 as usize] = true;
        };
        for c in 0..4 {
            for r in 0..2 {
                for s in 0..3 {
                    mark(t.host(c, r, s));
                }
                mark(t.tor(c, r));
            }
            for a in 0..2 {
                mark(t.agg(c, a));
            }
        }
        for a in 0..2 {
            for j in 0..2 {
                mark(t.core(a, j));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn link_ends_roundtrip() {
        let t = small();
        for l in 0..t.params.num_links() {
            let (lo, hi) = t.link_ends(LinkId(l));
            // Re-derive the link id from the endpoints.
            let derived = match (t.kind(lo), t.kind(hi)) {
                (NodeKind::Host, NodeKind::Tor) => t.host_link(lo),
                (NodeKind::Tor, NodeKind::Agg) => {
                    let (c, r) = t.tor_coords(lo);
                    let (_, a) = t.agg_coords(hi);
                    t.tor_agg_link(c, r, a)
                }
                (NodeKind::Agg, NodeKind::Core) => {
                    let (c, a) = t.agg_coords(lo);
                    let (_, j) = t.core_coords(hi);
                    t.agg_core_link(c, a, j)
                }
                other => panic!("unexpected link tier pair {other:?}"),
            };
            assert_eq!(derived, LinkId(l));
        }
    }

    #[test]
    fn link_classifiers() {
        let t = small();
        let h = t.host(1, 0, 2);
        assert!(t.is_host_link(t.host_link(h)));
        assert!(!t.is_agg_core_link(t.host_link(h)));
        assert!(t.is_agg_core_link(t.agg_core_link(3, 1, 1)));
        assert!(!t.is_host_link(t.tor_agg_link(0, 1, 0)));
    }

    #[test]
    fn core_connects_same_agg_position_in_all_clusters() {
        let t = small();
        // Core (a=1, j=0) must be reachable from agg index 1 of every cluster.
        for c in 0..4 {
            let l = t.agg_core_link(c, 1, 0);
            let (lo, hi) = t.link_ends(l);
            assert_eq!(lo, t.agg(c, 1));
            assert_eq!(hi, t.core(1, 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn rejects_single_cluster() {
        let _ = FatTreeParams::new(1, 2, 2, 1, 1);
    }
}
