//! Per-hop switch processing that is independent of queues and routing:
//! TTL handling and per-node drop accounting.
//!
//! Switches in this simulator are output-queued: the forwarding decision
//! (in [`crate::routing`]) selects an egress transmitter, and all buffering
//! happens in that transmitter's [`crate::queue::PortQueue`]. What remains
//! here is the header manipulation a real switch performs per hop.

use crate::packet::Packet;

/// Why a switch refused to forward a packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopDrop {
    /// TTL reached zero.
    TtlExpired,
}

/// Apply per-hop header processing (TTL decrement). Returns `Err` when the
/// packet must be dropped instead of forwarded.
pub fn process_hop(pkt: &mut Packet) -> Result<(), HopDrop> {
    if pkt.ttl == 0 {
        return Err(HopDrop::TtlExpired);
    }
    pkt.ttl -= 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::time::SimTime;
    use crate::topology::NodeId;

    #[test]
    fn ttl_decrements_per_hop() {
        let mut p = Packet::data(1, FlowId(1), NodeId(0), NodeId(1), 0, 100, false, SimTime::ZERO);
        let start = p.ttl;
        assert!(process_hop(&mut p).is_ok());
        assert_eq!(p.ttl, start - 1);
    }

    #[test]
    fn ttl_zero_drops() {
        let mut p = Packet::data(1, FlowId(1), NodeId(0), NodeId(1), 0, 100, false, SimTime::ZERO);
        p.ttl = 0;
        assert_eq!(process_hop(&mut p), Err(HopDrop::TtlExpired));
    }

    #[test]
    fn fat_tree_diameter_fits_in_initial_ttl() {
        let mut p = Packet::data(1, FlowId(1), NodeId(0), NodeId(1), 0, 100, false, SimTime::ZERO);
        // Longest path in a FatTree is 5 switch hops (tor-agg-core-agg-tor).
        for _ in 0..5 {
            assert!(process_hop(&mut p).is_ok());
        }
        assert!(p.ttl > 0);
    }
}
