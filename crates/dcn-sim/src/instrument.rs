//! Instrumentation: the measurements the paper's evaluation is built on.
//!
//! Three end-to-end metrics (§9 "Evaluation metrics"):
//! * **FCT** — flow completion time, recorded when the sender has every
//!   byte acknowledged.
//! * **Per-server throughput** — application bytes delivered per host,
//!   binned into 100 ms intervals.
//! * **RTT** — per-packet round-trip samples measured at senders from
//!   acknowledgment echoes.
//!
//! Plus the *boundary trace* (§5.1): for one designated cluster, a record
//! of every external packet entering and leaving, which becomes MimicNet's
//! training data after the matching step in `mimicnet::trace`.

use crate::mimic::BoundaryDir;
use crate::packet::{Ecn, FlowId, Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lifecycle record of one flow.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowRecord {
    pub flow: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    pub size_bytes: u64,
    pub start: SimTime,
    /// Set when the sender completes; `None` if still running at sim end.
    pub end: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}

/// One RTT sample observed by a sending host.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RttSample {
    pub host: NodeId,
    pub time: SimTime,
    pub rtt: SimDuration,
}

/// Whether a boundary record is the packet entering or leaving the learned
/// region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BoundaryPhase {
    Enter,
    Exit,
}

/// One packet observation at a cluster boundary juncture.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoundaryRecord {
    pub pkt_id: u64,
    pub flow: FlowId,
    pub time: SimTime,
    pub dir: BoundaryDir,
    pub phase: BoundaryPhase,
    pub wire_bytes: u32,
    pub ecn: Ecn,
    pub kind: PacketKind,
    pub src: NodeId,
    pub dst: NodeId,
    /// The core switch this packet traverses (deterministic under ECMP).
    pub core: NodeId,
    pub prio: u8,
}

impl BoundaryRecord {
    pub fn from_packet(
        pkt: &Packet,
        time: SimTime,
        dir: BoundaryDir,
        phase: BoundaryPhase,
        core: NodeId,
    ) -> BoundaryRecord {
        BoundaryRecord {
            pkt_id: pkt.id,
            flow: pkt.flow,
            time,
            dir,
            phase,
            wire_bytes: pkt.wire_bytes(),
            ecn: pkt.ecn,
            kind: pkt.kind,
            src: pkt.src,
            dst: pkt.dst,
            core,
            prio: pkt.prio,
        }
    }
}

/// Default throughput bin width (the paper bins into 100 ms intervals).
pub const DEFAULT_BIN: SimDuration = SimDuration(100_000_000);

/// Occupancy statistics of one directed port queue, sampled at every
/// enqueue (§7.1: users "can add arbitrary instrumentation, e.g. by
/// dumping pcaps or queue depths").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Largest packet occupancy ever observed.
    pub max_pkts: u32,
    /// Histogram of occupancy at enqueue time, bucketed by log2:
    /// bucket `i` counts enqueues that saw `2^i <= depth < 2^(i+1)`
    /// packets already queued (bucket 0 counts depth 0 and 1).
    pub depth_hist: [u64; 16],
    /// Total enqueue observations.
    pub samples: u64,
}

impl QueueStats {
    /// Record an enqueue that found `depth` packets already queued.
    pub fn observe(&mut self, depth: u32) {
        self.max_pkts = self.max_pkts.max(depth);
        let bucket = (32 - depth.max(1).leading_zeros() - 1).min(15) as usize;
        self.depth_hist[bucket] += 1;
        self.samples += 1;
    }

    /// Approximate occupancy quantile from the histogram (upper bucket
    /// bound), e.g. `quantile(0.99)`.
    pub fn quantile(&self, q: f64) -> u32 {
        if self.samples == 0 {
            return 0;
        }
        let target = (self.samples as f64 * q).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.depth_hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return 1u32 << (i + 1);
            }
        }
        self.max_pkts
    }
}

/// All measurements of one run.
pub struct Metrics {
    /// Per-flow lifecycle records.
    pub flows: HashMap<FlowId, FlowRecord>,
    /// RTT samples at senders.
    pub rtt: Vec<RttSample>,
    /// Delivered application bytes per host per bin; index = host id.
    tput_bins: Vec<Vec<u64>>,
    bin: SimDuration,
    /// Boundary trace for the designated cluster (empty if none).
    pub boundary: Vec<BoundaryRecord>,
    /// Total packets dropped by queues.
    pub queue_drops: u64,
    /// Total packets dropped by mimic models.
    pub mimic_drops: u64,
    /// Total CE marks applied by queues.
    pub ecn_marks: u64,
    /// Packets lost to injected link faults: Bernoulli wire losses (see
    /// [`crate::config::LinkConfig::loss_prob`] and gray failures) plus
    /// packets that became unroutable because every ECMP candidate was down.
    pub fault_drops: u64,
    /// Packets steered onto a non-default ECMP candidate because the
    /// flow's hashed choice was down (see
    /// [`crate::routing::Router::route_avoiding`]).
    pub reroutes: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Packets forwarded by switches (hop count total).
    pub hops_forwarded: u64,
    /// Per-(link, direction) queue occupancy statistics; indexed by link
    /// id, `[up, down]`. Empty unless the engine enabled them.
    pub queue_stats: Vec<[QueueStats; 2]>,
    /// Per-cluster drift scores reported by Mimic models at end of run;
    /// indexed by cluster id. `None` for packet-level clusters and models
    /// without drift monitoring.
    pub cluster_drift: Vec<Option<f64>>,
    /// Runtime fidelity transitions, ordered by `(epoch, cluster)`. Empty
    /// for fixed-fidelity runs. In partitioned runs each LP records only
    /// the clusters it owns, so the merged schedule has one record per
    /// switch and is invariant to the partition count — the adaptive
    /// determinism suite compares it byte-for-byte across 1/2/4 LPs.
    pub tier_switches: Vec<crate::mimic::TierSwitch>,
    /// Observability report folded in by the engine when tracing is on
    /// (`Simulation::enable_obs`); `None` otherwise. Boxed so the common
    /// obs-off path pays one pointer. Merged across PDES partitions via
    /// [`dcn_obs::ObsReport::merge`].
    pub obs: Option<Box<dcn_obs::ObsReport>>,
}

impl Metrics {
    pub fn new(num_hosts: u32) -> Metrics {
        Metrics {
            flows: HashMap::new(),
            rtt: Vec::new(),
            tput_bins: vec![Vec::new(); num_hosts as usize],
            bin: DEFAULT_BIN,
            boundary: Vec::new(),
            queue_drops: 0,
            mimic_drops: 0,
            ecn_marks: 0,
            fault_drops: 0,
            reroutes: 0,
            events_processed: 0,
            hops_forwarded: 0,
            queue_stats: Vec::new(),
            cluster_drift: Vec::new(),
            tier_switches: Vec::new(),
            obs: None,
        }
    }

    /// Allocate queue-depth tracking for `n_links` links.
    pub fn enable_queue_stats(&mut self, n_links: u32) {
        self.queue_stats = vec![[QueueStats::default(), QueueStats::default()]; n_links as usize];
    }

    /// Record an enqueue observation (no-op unless enabled).
    pub fn record_queue_depth(&mut self, link: u32, dir_index: usize, depth: u32) {
        if let Some(entry) = self.queue_stats.get_mut(link as usize) {
            entry[dir_index].observe(depth);
        }
    }

    /// Largest queue occupancy observed anywhere (packets).
    pub fn max_queue_depth(&self) -> u32 {
        self.queue_stats
            .iter()
            .flat_map(|s| s.iter())
            .map(|s| s.max_pkts)
            .max()
            .unwrap_or(0)
    }

    /// Record `bytes` delivered to `host`'s application at `now`.
    /// Out-of-range host ids are ignored, like `record_queue_depth` —
    /// composed topologies can surface feeder-host ids beyond the
    /// partition's own host count.
    pub fn record_delivery(&mut self, host: NodeId, now: SimTime, bytes: u64) {
        let idx = (now.as_nanos() / self.bin.as_nanos()) as usize;
        if let Some(bins) = self.tput_bins.get_mut(host.0 as usize) {
            if bins.len() <= idx {
                bins.resize(idx + 1, 0);
            }
            bins[idx] += bytes;
        }
    }

    /// Number of flows that completed.
    pub fn flows_completed(&self) -> usize {
        self.flows.values().filter(|f| f.end.is_some()).count()
    }

    /// Total flows started.
    pub fn flows_started(&self) -> usize {
        self.flows.len()
    }

    /// FCT samples (seconds) over completed flows passing `filter`.
    pub fn fct_samples(&self, filter: impl Fn(&FlowRecord) -> bool) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .flows
            .values()
            .filter(|f| filter(f))
            .filter_map(|f| f.fct().map(|d| d.as_secs_f64()))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Per-(host, bin) throughput samples in bytes/second for hosts passing
    /// `filter`. Bins after the last delivery of a host are not reported.
    pub fn throughput_samples(&self, filter: impl Fn(NodeId) -> bool) -> Vec<f64> {
        let bin_s = self.bin.as_secs_f64();
        let mut v = Vec::new();
        for (h, bins) in self.tput_bins.iter().enumerate() {
            if !filter(NodeId(h as u32)) {
                continue;
            }
            for &b in bins {
                v.push(b as f64 / bin_s);
            }
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// RTT samples in seconds for hosts passing `filter`.
    pub fn rtt_samples(&self, filter: impl Fn(NodeId) -> bool) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .rtt
            .iter()
            .filter(|s| filter(s.host))
            .map(|s| s.rtt.as_secs_f64())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Total application bytes delivered across all hosts.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.tput_bins.iter().flatten().sum()
    }

    /// Merge another partition's metrics into this one (PDES join).
    ///
    /// Flow records are disjoint by construction (a flow is recorded by its
    /// sender's partition); throughput bins are summed element-wise.
    pub fn merge(&mut self, other: Metrics) {
        for (id, rec) in other.flows {
            let prev = self.flows.insert(id, rec);
            debug_assert!(prev.is_none(), "flow recorded by two partitions");
        }
        self.rtt.extend(other.rtt);
        if self.tput_bins.len() < other.tput_bins.len() {
            self.tput_bins.resize(other.tput_bins.len(), Vec::new());
        }
        for (mine, theirs) in self.tput_bins.iter_mut().zip(other.tput_bins) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        self.boundary = Self::merge_boundary(std::mem::take(&mut self.boundary), other.boundary);
        self.queue_drops += other.queue_drops;
        self.mimic_drops += other.mimic_drops;
        self.ecn_marks += other.ecn_marks;
        self.fault_drops += other.fault_drops;
        self.reroutes += other.reroutes;
        self.events_processed += other.events_processed;
        self.hops_forwarded += other.hops_forwarded;
        if self.queue_stats.len() < other.queue_stats.len() {
            self.queue_stats
                .resize_with(other.queue_stats.len(), Default::default);
        }
        for (mine, theirs) in self.queue_stats.iter_mut().zip(&other.queue_stats) {
            for d in 0..2 {
                mine[d].max_pkts = mine[d].max_pkts.max(theirs[d].max_pkts);
                mine[d].samples += theirs[d].samples;
                for (a, b) in mine[d].depth_hist.iter_mut().zip(&theirs[d].depth_hist) {
                    *a += b;
                }
            }
        }
        if self.cluster_drift.len() < other.cluster_drift.len() {
            self.cluster_drift.resize(other.cluster_drift.len(), None);
        }
        for (mine, theirs) in self.cluster_drift.iter_mut().zip(other.cluster_drift) {
            if theirs.is_some() {
                *mine = theirs;
            }
        }
        // Partitions record disjoint cluster sets, so a plain merge-and-sort
        // yields the canonical (epoch, cluster)-ordered schedule.
        self.tier_switches.extend(other.tier_switches);
        self.tier_switches.sort_by_key(|s| (s.epoch, s.cluster));
        match (&mut self.obs, other.obs) {
            (Some(mine), Some(theirs)) => mine.merge(*theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs),
            _ => {}
        }
    }

    /// Combine two boundary traces into one sorted by `(time, pkt_id)`.
    /// Each partition emits its trace in event order, so both inputs are
    /// normally already sorted and a linear merge suffices; an unsorted
    /// input (possible when pkt-id ties interleave) falls back to a sort.
    fn merge_boundary(a: Vec<BoundaryRecord>, b: Vec<BoundaryRecord>) -> Vec<BoundaryRecord> {
        fn key(r: &BoundaryRecord) -> (SimTime, u64) {
            (r.time, r.pkt_id)
        }
        fn is_sorted(v: &[BoundaryRecord]) -> bool {
            v.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
        }
        if a.is_empty() {
            let mut b = b;
            if !is_sorted(&b) {
                b.sort_by_key(key);
            }
            return b;
        }
        if b.is_empty() {
            let mut a = a;
            if !is_sorted(&a) {
                a.sort_by_key(key);
            }
            return a;
        }
        if !is_sorted(&a) || !is_sorted(&b) {
            let mut v = a;
            v.extend(b);
            v.sort_by_key(key);
            return v;
        }
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let mut xs = a.into_iter().peekable();
        let mut ys = b.into_iter().peekable();
        loop {
            match (xs.peek(), ys.peek()) {
                (Some(x), Some(y)) => {
                    if key(x) <= key(y) {
                        merged.push(xs.next().unwrap());
                    } else {
                        merged.push(ys.next().unwrap());
                    }
                }
                (Some(_), None) => {
                    merged.extend(xs);
                    break;
                }
                (None, _) => {
                    merged.extend(ys);
                    break;
                }
            }
        }
        merged
    }
}

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};

impl Metrics {
    /// Serialize every deterministic measurement. Sample vectors whose
    /// in-memory order depends on the partition count (flow map keys, RTT
    /// samples, the boundary trace) are written in a canonical sort order,
    /// so equal measurement *sets* always produce equal bytes — the
    /// byte-identity tests compare exactly these serializations across
    /// 1/2/4 LPs. The `obs` report is excluded: it holds wall-clock
    /// timings that are legitimately different across runs.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let mut flow_ids: Vec<FlowId> = self.flows.keys().copied().collect();
        flow_ids.sort_unstable();
        w.put_u64(flow_ids.len() as u64);
        for id in flow_ids {
            let f = &self.flows[&id];
            w.put_u64(f.flow.0);
            w.put_u32(f.src.0);
            w.put_u32(f.dst.0);
            w.put_u64(f.size_bytes);
            w.put_u64(f.start.0);
            w.put_opt_u64(f.end.map(|t| t.0));
        }
        // A sequential run records RTT samples in event order while a
        // partitioned join concatenates per-LP vectors; sort a side index
        // by a total key so both serialize identically.
        let mut rtt_order: Vec<usize> = (0..self.rtt.len()).collect();
        rtt_order.sort_by_key(|&i| {
            let s = &self.rtt[i];
            (s.time, s.host.0, s.rtt)
        });
        w.put_u64(self.rtt.len() as u64);
        for i in rtt_order {
            let s = &self.rtt[i];
            w.put_u32(s.host.0);
            w.put_u64(s.time.0);
            w.put_u64(s.rtt.0);
        }
        w.put_u64(self.tput_bins.len() as u64);
        for bins in &self.tput_bins {
            w.put_u64_slice(bins);
        }
        w.put_u64(self.bin.0);
        // Same partition-order hazard as RTT: ties at one timestamp can
        // interleave differently, so serialize under a total key.
        let mut bnd_order: Vec<usize> = (0..self.boundary.len()).collect();
        bnd_order.sort_by_key(|&i| {
            let b = &self.boundary[i];
            (
                b.time,
                b.pkt_id,
                matches!(b.dir, crate::mimic::BoundaryDir::Egress),
                matches!(b.phase, BoundaryPhase::Exit),
            )
        });
        w.put_u64(self.boundary.len() as u64);
        for i in bnd_order {
            let b = &self.boundary[i];
            w.put_u64(b.pkt_id);
            w.put_u64(b.flow.0);
            w.put_u64(b.time.0);
            w.put_u8(match b.dir {
                crate::mimic::BoundaryDir::Ingress => 0,
                crate::mimic::BoundaryDir::Egress => 1,
            });
            w.put_u8(match b.phase {
                BoundaryPhase::Enter => 0,
                BoundaryPhase::Exit => 1,
            });
            w.put_u32(b.wire_bytes);
            w.put_u8(match b.ecn {
                Ecn::NotEct => 0,
                Ecn::Ect => 1,
                Ecn::Ce => 2,
            });
            w.put_u8(match b.kind {
                PacketKind::Data => 0,
                PacketKind::Ack => 1,
                PacketKind::Grant => 2,
            });
            w.put_u32(b.src.0);
            w.put_u32(b.dst.0);
            w.put_u32(b.core.0);
            w.put_u8(b.prio);
        }
        w.put_u64(self.queue_drops);
        w.put_u64(self.mimic_drops);
        w.put_u64(self.ecn_marks);
        w.put_u64(self.fault_drops);
        w.put_u64(self.reroutes);
        w.put_u64(self.events_processed);
        w.put_u64(self.hops_forwarded);
        w.put_u64(self.queue_stats.len() as u64);
        for entry in &self.queue_stats {
            for s in entry {
                w.put_u32(s.max_pkts);
                for &c in &s.depth_hist {
                    w.put_u64(c);
                }
                w.put_u64(s.samples);
            }
        }
        w.put_u64(self.cluster_drift.len() as u64);
        for d in &self.cluster_drift {
            w.put_opt_f64(*d);
        }
        w.put_u64(self.tier_switches.len() as u64);
        for s in &self.tier_switches {
            w.put_u64(s.epoch);
            w.put_u32(s.cluster);
            w.put_u8(s.from.index() as u8);
            w.put_u8(s.to.index() as u8);
        }
    }

    /// Restore measurements from [`Metrics::save_state`] bytes. `obs` is
    /// left untouched (it restarts fresh on resume).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let nflows = r.get_count(25)?;
        self.flows = HashMap::with_capacity(nflows);
        for _ in 0..nflows {
            let flow = FlowId(r.get_u64()?);
            let src = NodeId(r.get_u32()?);
            let dst = NodeId(r.get_u32()?);
            let size_bytes = r.get_u64()?;
            let start = SimTime(r.get_u64()?);
            let end = r.get_opt_u64()?.map(SimTime);
            self.flows.insert(
                flow,
                FlowRecord {
                    flow,
                    src,
                    dst,
                    size_bytes,
                    start,
                    end,
                },
            );
        }
        let nrtt = r.get_count(20)?;
        self.rtt = (0..nrtt)
            .map(|_| {
                Ok(RttSample {
                    host: NodeId(r.get_u32()?),
                    time: SimTime(r.get_u64()?),
                    rtt: SimDuration(r.get_u64()?),
                })
            })
            .collect::<Result<_, SnapshotError>>()?;
        let nhosts = r.get_count(8)?;
        self.tput_bins = (0..nhosts)
            .map(|_| r.get_u64_vec())
            .collect::<Result<_, SnapshotError>>()?;
        self.bin = SimDuration(r.get_u64()?);
        let nb = r.get_count(40)?;
        self.boundary = (0..nb)
            .map(|_| {
                Ok(BoundaryRecord {
                    pkt_id: r.get_u64()?,
                    flow: FlowId(r.get_u64()?),
                    time: SimTime(r.get_u64()?),
                    dir: match r.get_u8()? {
                        0 => BoundaryDir::Ingress,
                        1 => BoundaryDir::Egress,
                        b => {
                            return Err(SnapshotError::Corrupt(format!("bad BoundaryDir {b}")))
                        }
                    },
                    phase: match r.get_u8()? {
                        0 => BoundaryPhase::Enter,
                        1 => BoundaryPhase::Exit,
                        b => {
                            return Err(SnapshotError::Corrupt(format!("bad BoundaryPhase {b}")))
                        }
                    },
                    wire_bytes: r.get_u32()?,
                    ecn: match r.get_u8()? {
                        0 => Ecn::NotEct,
                        1 => Ecn::Ect,
                        2 => Ecn::Ce,
                        b => return Err(SnapshotError::Corrupt(format!("bad Ecn {b}"))),
                    },
                    kind: match r.get_u8()? {
                        0 => PacketKind::Data,
                        1 => PacketKind::Ack,
                        2 => PacketKind::Grant,
                        b => return Err(SnapshotError::Corrupt(format!("bad PacketKind {b}"))),
                    },
                    src: NodeId(r.get_u32()?),
                    dst: NodeId(r.get_u32()?),
                    core: NodeId(r.get_u32()?),
                    prio: r.get_u8()?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?;
        self.queue_drops = r.get_u64()?;
        self.mimic_drops = r.get_u64()?;
        self.ecn_marks = r.get_u64()?;
        self.fault_drops = r.get_u64()?;
        self.reroutes = r.get_u64()?;
        self.events_processed = r.get_u64()?;
        self.hops_forwarded = r.get_u64()?;
        let nq = r.get_count(280)?;
        self.queue_stats = (0..nq)
            .map(|_| {
                let mut entry = [QueueStats::default(), QueueStats::default()];
                for s in &mut entry {
                    s.max_pkts = r.get_u32()?;
                    for c in &mut s.depth_hist {
                        *c = r.get_u64()?;
                    }
                    s.samples = r.get_u64()?;
                }
                Ok(entry)
            })
            .collect::<Result<_, SnapshotError>>()?;
        let nd = r.get_count(1)?;
        self.cluster_drift = (0..nd)
            .map(|_| r.get_opt_f64())
            .collect::<Result<_, SnapshotError>>()?;
        let tier = |b: u8| {
            crate::mimic::FidelityTier::from_index(b as usize)
                .ok_or_else(|| SnapshotError::Corrupt(format!("bad FidelityTier {b}")))
        };
        let ns = r.get_count(14)?;
        self.tier_switches = (0..ns)
            .map(|_| {
                Ok(crate::mimic::TierSwitch {
                    epoch: r.get_u64()?,
                    cluster: r.get_u32()?,
                    from: tier(r.get_u8()?)?,
                    to: tier(r.get_u8()?)?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?;
        Ok(())
    }

    /// The canonical byte serialization of these metrics: equal metrics ⇔
    /// equal bytes. Used by the bit-identity suites and the kill-and-resume
    /// CI check to compare runs byte-for-byte.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save_state(&mut w);
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_of_incomplete_flow_is_none() {
        let r = FlowRecord {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1000,
            start: SimTime::from_secs_f64(1.0),
            end: None,
        };
        assert!(r.fct().is_none());
    }

    #[test]
    fn fct_computed_from_start_end() {
        let r = FlowRecord {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1000,
            start: SimTime::from_secs_f64(1.0),
            end: Some(SimTime::from_secs_f64(1.5)),
        };
        assert_eq!(r.fct().unwrap(), SimDuration::from_millis(500));
    }

    #[test]
    fn delivery_binning() {
        let mut m = Metrics::new(2);
        m.record_delivery(NodeId(0), SimTime::from_secs_f64(0.05), 1000);
        m.record_delivery(NodeId(0), SimTime::from_secs_f64(0.09), 500);
        m.record_delivery(NodeId(0), SimTime::from_secs_f64(0.15), 2000);
        m.record_delivery(NodeId(1), SimTime::from_secs_f64(0.25), 300);
        // Host 0: bin0 = 1500 B -> 15_000 B/s, bin1 = 2000 -> 20_000 B/s.
        let all = m.throughput_samples(|_| true);
        assert_eq!(all.len(), 2 + 3); // host0: 2 bins; host1: 3 bins (two empty)
        assert!(all.contains(&15_000.0));
        assert!(all.contains(&20_000.0));
        assert!(all.contains(&3_000.0));
        let only0 = m.throughput_samples(|h| h.0 == 0);
        assert_eq!(only0.len(), 2);
        assert_eq!(m.total_delivered_bytes(), 3_800);
    }

    #[test]
    fn fct_samples_sorted_and_filtered() {
        let mut m = Metrics::new(1);
        for (i, (start, end)) in [(0.0, 0.5), (0.0, 0.2), (0.0, 0.9)].iter().enumerate() {
            m.flows.insert(
                FlowId(i as u64),
                FlowRecord {
                    flow: FlowId(i as u64),
                    src: NodeId(i as u32),
                    dst: NodeId(0),
                    size_bytes: 1,
                    start: SimTime::from_secs_f64(*start),
                    end: Some(SimTime::from_secs_f64(*end)),
                },
            );
        }
        let all = m.fct_samples(|_| true);
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        let some = m.fct_samples(|f| f.src.0 < 2);
        assert_eq!(some.len(), 2);
    }

    #[test]
    fn queue_stats_histogram_and_quantiles() {
        let mut s = QueueStats::default();
        for d in [0u32, 1, 1, 3, 7, 64] {
            s.observe(d);
        }
        assert_eq!(s.max_pkts, 64);
        assert_eq!(s.samples, 6);
        // Depths 0 and 1 land in bucket 0; 3 in bucket 1; 7 in bucket 2;
        // 64 in bucket 6.
        assert_eq!(s.depth_hist[0], 3);
        assert_eq!(s.depth_hist[1], 1);
        assert_eq!(s.depth_hist[2], 1);
        assert_eq!(s.depth_hist[6], 1);
        // Median falls in bucket 0 -> bound 2.
        assert_eq!(s.quantile(0.5), 2);
        assert!(s.quantile(1.0) >= 64);
    }

    #[test]
    fn metrics_queue_depth_recording() {
        let mut m = Metrics::new(1);
        m.enable_queue_stats(3);
        m.record_queue_depth(1, 0, 5);
        m.record_queue_depth(1, 0, 9);
        m.record_queue_depth(2, 1, 1);
        assert_eq!(m.max_queue_depth(), 9);
        assert_eq!(m.queue_stats[1][0].samples, 2);
        assert_eq!(m.queue_stats[2][1].samples, 1);
        // Out-of-range link ids are ignored, not panics.
        m.record_queue_depth(99, 0, 100);
        assert_eq!(m.max_queue_depth(), 9);
    }

    fn boundary_rec(t: u64, pkt_id: u64) -> BoundaryRecord {
        BoundaryRecord {
            pkt_id,
            flow: FlowId(1),
            time: SimTime(t),
            dir: BoundaryDir::Ingress,
            phase: BoundaryPhase::Enter,
            wire_bytes: 100,
            ecn: Ecn::Ect,
            kind: PacketKind::Data,
            src: NodeId(0),
            dst: NodeId(1),
            core: NodeId(2),
            prio: 0,
        }
    }

    #[test]
    fn delivery_out_of_range_host_is_ignored() {
        let mut m = Metrics::new(2);
        m.record_delivery(NodeId(0), SimTime::from_secs_f64(0.01), 100);
        // Regression: this used to panic with an unchecked index.
        m.record_delivery(NodeId(99), SimTime::from_secs_f64(0.01), 100);
        assert_eq!(m.total_delivered_bytes(), 100);
    }

    #[test]
    fn merge_boundary_linear_matches_sort() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        a.boundary = vec![boundary_rec(10, 1), boundary_rec(20, 5), boundary_rec(30, 2)];
        b.boundary = vec![boundary_rec(5, 9), boundary_rec(20, 3), boundary_rec(40, 1)];
        let mut expect: Vec<(SimTime, u64)> = a
            .boundary
            .iter()
            .chain(&b.boundary)
            .map(|r| (r.time, r.pkt_id))
            .collect();
        expect.sort();
        a.merge(b);
        let got: Vec<(SimTime, u64)> = a.boundary.iter().map(|r| (r.time, r.pkt_id)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_boundary_unsorted_input_still_sorts() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        // Deliberately unsorted side exercises the fallback path.
        a.boundary = vec![boundary_rec(30, 1), boundary_rec(10, 1)];
        b.boundary = vec![boundary_rec(20, 1)];
        a.merge(b);
        let got: Vec<u64> = a.boundary.iter().map(|r| r.time.0).collect();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn merge_sums_unequal_length_tput_bins() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(3);
        a.record_delivery(NodeId(0), SimTime::from_secs_f64(0.01), 100);
        b.record_delivery(NodeId(0), SimTime::from_secs_f64(0.01), 50);
        b.record_delivery(NodeId(0), SimTime::from_secs_f64(0.15), 25);
        b.record_delivery(NodeId(2), SimTime::from_secs_f64(0.01), 7);
        a.merge(b);
        assert_eq!(a.total_delivered_bytes(), 182);
        // Host 0 bins summed element-wise with the longer side kept.
        let host0 = a.throughput_samples(|h| h.0 == 0);
        assert_eq!(host0.len(), 2);
        assert!(host0.contains(&1_500.0)); // 150 B in a 100 ms bin
        assert!(host0.contains(&250.0));
        // Host 2 exists only in `b`; merge must have widened `a`.
        assert_eq!(a.throughput_samples(|h| h.0 == 2).len(), 1);
    }

    #[test]
    fn merge_sums_queue_stats_histograms() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        a.enable_queue_stats(1);
        b.enable_queue_stats(2);
        a.record_queue_depth(0, 0, 3);
        b.record_queue_depth(0, 0, 3);
        b.record_queue_depth(0, 0, 100);
        b.record_queue_depth(1, 1, 1);
        a.merge(b);
        assert_eq!(a.queue_stats.len(), 2);
        assert_eq!(a.queue_stats[0][0].samples, 3);
        assert_eq!(a.queue_stats[0][0].depth_hist[1], 2); // two depth-3 observations
        assert_eq!(a.queue_stats[0][0].max_pkts, 100);
        assert_eq!(a.queue_stats[1][1].samples, 1);
    }

    #[test]
    fn merge_cluster_drift_overwrites_when_present() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        a.cluster_drift = vec![Some(0.1), Some(0.2), None];
        b.cluster_drift = vec![None, Some(0.9), Some(0.3), Some(0.4)];
        a.merge(b);
        // `Some` on the incoming side wins; `None` leaves ours in place.
        assert_eq!(a.cluster_drift, vec![Some(0.1), Some(0.9), Some(0.3), Some(0.4)]);
    }

    #[test]
    fn merge_orders_tier_switches_canonically() {
        use crate::mimic::{FidelityTier, TierSwitch};
        let sw = |epoch, cluster| TierSwitch {
            epoch,
            cluster,
            from: FidelityTier::Mimic,
            to: FidelityTier::Flow,
        };
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        a.tier_switches = vec![sw(1, 2), sw(3, 1)];
        b.tier_switches = vec![sw(1, 1), sw(2, 3)];
        a.merge(b);
        let got: Vec<(u64, u32)> = a.tier_switches.iter().map(|s| (s.epoch, s.cluster)).collect();
        assert_eq!(got, vec![(1, 1), (1, 2), (2, 3), (3, 1)]);
        // The schedule participates in the canonical byte serialization.
        let mut c = Metrics::new(1);
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
        c.tier_switches = a.tier_switches.clone();
        assert_eq!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn merge_combines_obs_reports() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        let mut ra = dcn_obs::ObsReport::default();
        ra.counters.insert("sim.windows".into(), 2);
        b.obs = Some(Box::new(ra.clone()));
        a.merge(b);
        assert_eq!(a.obs.as_ref().unwrap().counter("sim.windows"), 2);
        let mut c = Metrics::new(1);
        c.obs = Some(Box::new(ra));
        a.merge(c);
        assert_eq!(a.obs.as_ref().unwrap().counter("sim.windows"), 4);
    }

    #[test]
    fn rtt_filtering() {
        let mut m = Metrics::new(2);
        m.rtt.push(RttSample {
            host: NodeId(0),
            time: SimTime::ZERO,
            rtt: SimDuration::from_millis(1),
        });
        m.rtt.push(RttSample {
            host: NodeId(1),
            time: SimTime::ZERO,
            rtt: SimDuration::from_millis(2),
        });
        assert_eq!(m.rtt_samples(|h| h.0 == 1), vec![0.002]);
    }
}
