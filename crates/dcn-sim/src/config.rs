//! Simulation configuration.
//!
//! A [`SimConfig`] plus a transport factory fully determines a run. The
//! defaults mirror the paper's evaluation setup (§9 "Methodology") with all
//! scales reduced so that full-fidelity ground truth remains computable on
//! one CPU — the same reason the paper capped links at 100 Mbps ("higher
//! speeds and larger networks were not feasible due to the limitation of
//! needing to evaluate MimicNet against a full-fidelity simulation").
//! See DESIGN.md §1 for the complete substitution table.

use crate::error::SimError;
use crate::queue::QueueConfig;
use crate::time::SimDuration;
use crate::topology::FatTreeParams;
use serde::{Deserialize, Serialize};

/// Link speeds and latencies per tier.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Host access link bandwidth, bits/s.
    pub host_bw_bps: u64,
    /// Fabric (ToR-Agg, Agg-Core) link bandwidth, bits/s.
    pub fabric_bw_bps: u64,
    /// One-way propagation latency of every link (the paper uses a uniform
    /// 500 µs).
    pub latency: SimDuration,
    /// Probability that a transmitted packet is lost on the wire (bit
    /// errors / gray failures). The paper assumes failure-free FatTrees
    /// (§4.2); this knob exists to *violate* that assumption and measure
    /// the consequences (Appendix A discussion).
    pub loss_prob: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // Paper: 100 Mbps / 500 us. We keep the latency and cut the
            // bandwidth 10x, which shrinks per-second packet counts while
            // preserving multi-packet BDP queueing dynamics.
            host_bw_bps: 10_000_000,
            fabric_bw_bps: 10_000_000,
            latency: SimDuration::from_micros(500),
            loss_prob: 0.0,
        }
    }
}

/// Queue discipline applied at every switch/host port.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QueueSetup {
    /// Per-port capacity in bytes.
    pub capacity_bytes: u64,
    /// DCTCP-style ECN marking threshold in packets, if enabled.
    pub ecn_k: Option<u32>,
    /// Strict-priority bands (1 = FIFO; Homa uses 8).
    pub bands: u8,
}

impl Default for QueueSetup {
    fn default() -> Self {
        QueueSetup {
            // ~66 full-size packets, a typical shallow DC buffer.
            capacity_bytes: 100_000,
            ecn_k: None,
            bands: 1,
        }
    }
}

impl QueueSetup {
    pub fn to_queue_config(self) -> QueueConfig {
        QueueConfig {
            capacity_bytes: self.capacity_bytes,
            ecn_mark_threshold_pkts: self.ecn_k,
            bands: self.bands,
        }
    }
}

/// Flow size distributions.
///
/// The paper's workload "uses traces from a well-known distribution also
/// used by many recent data center proposals" (the DCTCP/pFabric web-search
/// distribution) with a configurable mean. All variants are parameterized
/// by their mean so that workloads scale proportionally with no dependence
/// on network size (§4.2 "Traffic patterns that scale proportionally").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum FlowSizeDist {
    /// Heavy-tailed empirical web-search-style distribution, rescaled to
    /// the given mean.
    WebSearch { mean_bytes: f64 },
    /// Every flow the same size.
    Fixed { bytes: u64 },
    /// Bounded Pareto-style tail via the plain Pareto with shape > 1.
    Pareto { mean_bytes: f64, shape: f64 },
    /// Uniform in `[min, max]`.
    Uniform { min_bytes: u64, max_bytes: u64 },
}

impl FlowSizeDist {
    /// Mean flow size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match *self {
            FlowSizeDist::WebSearch { mean_bytes } => mean_bytes,
            FlowSizeDist::Fixed { bytes } => bytes as f64,
            FlowSizeDist::Pareto { mean_bytes, .. } => mean_bytes,
            FlowSizeDist::Uniform {
                min_bytes,
                max_bytes,
            } => (min_bytes + max_bytes) as f64 / 2.0,
        }
    }
}

/// How destinations are chosen within the target cluster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub enum TrafficPattern {
    /// Uniform over the cluster's hosts (the paper's workload).
    Uniform,
    /// Incast: all traffic converges on the cluster's first `sinks` hosts
    /// — a deliberate fan-in stressor for the paper's "congestion occurs
    /// primarily on fan-in" assumption (§4.2).
    Incast { sinks: u32 },
}

/// Workload parameters. Everything is per-host and size-independent.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Offered load as a fraction of host access bandwidth (the paper's
    /// "70% of the bisection bandwidth" under symmetric FatTrees).
    pub load: f64,
    /// Flow size distribution.
    pub size: FlowSizeDist,
    /// Fraction of traffic that leaves its source cluster (the paper's
    /// `p`, 0 ≤ p ≤ 1).
    pub inter_cluster_fraction: f64,
    /// Destination selection within the target cluster.
    pub pattern: TrafficPattern,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            load: 0.7,
            // Paper mean: 1.6 MB at 100 Mbps. Scaled with the bandwidth cut
            // so flows last a similar number of RTTs.
            size: FlowSizeDist::WebSearch { mean_bytes: 80_000.0 },
            inter_cluster_fraction: 0.5,
            pattern: TrafficPattern::Uniform,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Topology dimensions.
    pub topo: FatTreeParams,
    /// Link speeds/latencies.
    pub link: LinkConfig,
    /// Queue discipline.
    pub queue: QueueSetup,
    /// Workload.
    pub traffic: TrafficConfig,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Master seed; all random streams derive from it.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's small-scale data-generation setup: two clusters of two
    /// racks with two hosts each, with a full-bisection core tier
    /// (`cores_per_agg = racks_per_cluster`) so that — per the paper's
    /// §4.2 assumptions — congestion concentrates on fan-in *inside*
    /// clusters rather than at the (unmodeled) core.
    pub fn small_scale() -> SimConfig {
        SimConfig {
            topo: FatTreeParams::new(2, 2, 2, 2, 2),
            link: LinkConfig::default(),
            queue: QueueSetup::default(),
            traffic: TrafficConfig::default(),
            duration_s: 1.0,
            seed: 1,
        }
    }

    /// Same shape as [`SimConfig::small_scale`] but with `n` clusters.
    pub fn with_clusters(n: u32) -> SimConfig {
        let mut c = SimConfig::small_scale();
        c.topo.clusters = n;
        c
    }

    /// Number of hosts in this configuration.
    pub fn num_hosts(&self) -> u32 {
        self.topo.num_hosts()
    }

    /// Check every user-settable field, returning the first violation as a
    /// typed [`SimError`] instead of panicking deep inside the engine.
    ///
    /// Call this before [`crate::simulator::Simulation::new`] when the
    /// configuration comes from outside the program (CLI flags, JSON).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.topo.clusters < 2 {
            return Err(SimError::config(
                "topo.clusters",
                format!("must be >= 2, got {}", self.topo.clusters),
            ));
        }
        if self.topo.racks_per_cluster == 0 {
            return Err(SimError::config("topo.racks_per_cluster", "must be > 0"));
        }
        if self.topo.hosts_per_rack == 0 {
            return Err(SimError::config("topo.hosts_per_rack", "must be > 0"));
        }
        if self.topo.aggs_per_cluster == 0 {
            return Err(SimError::config("topo.aggs_per_cluster", "must be > 0"));
        }
        if self.topo.cores_per_agg == 0 {
            return Err(SimError::config("topo.cores_per_agg", "must be > 0"));
        }
        if self.link.host_bw_bps == 0 {
            return Err(SimError::config("link.host_bw_bps", "link rate must be > 0"));
        }
        if self.link.fabric_bw_bps == 0 {
            return Err(SimError::config(
                "link.fabric_bw_bps",
                "link rate must be > 0",
            ));
        }
        if !(0.0..=1.0).contains(&self.link.loss_prob) {
            return Err(SimError::config(
                "link.loss_prob",
                format!("must lie in [0, 1], got {}", self.link.loss_prob),
            ));
        }
        if self.queue.capacity_bytes == 0 {
            return Err(SimError::config("queue.capacity_bytes", "must be > 0"));
        }
        if self.queue.bands == 0 {
            return Err(SimError::config("queue.bands", "must be >= 1"));
        }
        if !(self.traffic.load >= 0.0 && self.traffic.load.is_finite()) {
            return Err(SimError::config(
                "traffic.load",
                format!("must be a finite non-negative number, got {}", self.traffic.load),
            ));
        }
        if !(0.0..=1.0).contains(&self.traffic.inter_cluster_fraction) {
            return Err(SimError::config(
                "traffic.inter_cluster_fraction",
                format!(
                    "must lie in [0, 1], got {}",
                    self.traffic.inter_cluster_fraction
                ),
            ));
        }
        if !(self.traffic.size.mean_bytes() > 0.0 && self.traffic.size.mean_bytes().is_finite()) {
            return Err(SimError::config(
                "traffic.size",
                format!("mean flow size must be positive, got {}", self.traffic.size.mean_bytes()),
            ));
        }
        if let TrafficPattern::Incast { sinks } = self.traffic.pattern {
            if sinks == 0 {
                return Err(SimError::config("traffic.pattern", "incast needs sinks >= 1"));
            }
        }
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err(SimError::config(
                "duration_s",
                format!("must be a positive finite number, got {}", self.duration_s),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_shape() {
        let c = SimConfig::small_scale();
        assert_eq!(c.topo.clusters, 2);
        assert_eq!(c.num_hosts(), 8);
    }

    #[test]
    fn with_clusters_scales_only_cluster_count() {
        let c = SimConfig::with_clusters(16);
        assert_eq!(c.topo.clusters, 16);
        assert_eq!(c.topo.racks_per_cluster, 2);
        assert_eq!(c.num_hosts(), 64);
    }

    #[test]
    fn flow_size_means() {
        assert_eq!(FlowSizeDist::Fixed { bytes: 100 }.mean_bytes(), 100.0);
        assert_eq!(
            FlowSizeDist::Uniform {
                min_bytes: 0,
                max_bytes: 10
            }
            .mean_bytes(),
            5.0
        );
        assert_eq!(
            FlowSizeDist::WebSearch {
                mean_bytes: 30_000.0
            }
            .mean_bytes(),
            30_000.0
        );
    }

    #[test]
    fn queue_setup_conversion() {
        let q = QueueSetup {
            capacity_bytes: 50_000,
            ecn_k: Some(20),
            bands: 8,
        };
        let qc = q.to_queue_config();
        assert_eq!(qc.capacity_bytes, 50_000);
        assert_eq!(qc.ecn_mark_threshold_pkts, Some(20));
        assert_eq!(qc.bands, 8);
    }

    #[test]
    fn validate_accepts_defaults() {
        assert_eq!(SimConfig::small_scale().validate(), Ok(()));
        assert_eq!(SimConfig::with_clusters(16).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_loss_prob_outside_unit_interval() {
        let mut c = SimConfig::small_scale();
        c.link.loss_prob = 1.5;
        let err = c.validate().unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::InvalidConfig {
                field: "link.loss_prob",
                ..
            }
        ));
        c.link.loss_prob = -0.01;
        assert!(c.validate().is_err());
        c.link.loss_prob = f64::NAN;
        assert!(c.validate().is_err());
        c.link.loss_prob = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_link_rate() {
        let mut c = SimConfig::small_scale();
        c.link.host_bw_bps = 0;
        assert!(matches!(
            c.validate().unwrap_err(),
            crate::error::SimError::InvalidConfig {
                field: "link.host_bw_bps",
                ..
            }
        ));
        let mut c = SimConfig::small_scale();
        c.link.fabric_bw_bps = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_too_few_clusters() {
        let mut c = SimConfig::small_scale();
        c.topo.clusters = 1;
        assert!(matches!(
            c.validate().unwrap_err(),
            crate::error::SimError::InvalidConfig {
                field: "topo.clusters",
                ..
            }
        ));
        c.topo.clusters = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_workload_and_duration() {
        let mut c = SimConfig::small_scale();
        c.duration_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::small_scale();
        c.traffic.inter_cluster_fraction = 2.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::small_scale();
        c.traffic.load = f64::INFINITY;
        assert!(c.validate().is_err());
        let mut c = SimConfig::small_scale();
        c.queue.capacity_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serializes() {
        let c = SimConfig::small_scale();
        let s = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.topo.clusters, 2);
        assert_eq!(back.seed, c.seed);
    }
}
