//! Deterministic checkpoint/restore: the snapshot codec and file format.
//!
//! A snapshot is a byte-exact capture of every piece of *mutable* simulation
//! state — event queue contents, virtual time, RNG streams, port queues,
//! per-flow transport state, fault progress, Mimic model state, and metrics.
//! Immutable structure (topology, routing tables, compiled fault schedules,
//! model weights) is *not* stored: a restore first rebuilds the simulation
//! exactly as an uninterrupted run would, then overwrites the mutable state
//! from the snapshot. The correctness contract is bit-identity: a run that is
//! snapshotted at time T and restored must produce byte-identical final
//! metrics to an uninterrupted run (see `tests/integration_snapshot.rs`).
//!
//! ## Wire format
//!
//! The codec is hand-rolled and dependency-free. All integers are
//! little-endian; floats are stored as their IEEE-754 bit patterns so
//! round-trips are exact. Variable-length data is length-prefixed. A
//! snapshot *file* wraps the payload in a self-validating container:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DCNSNAP\0"
//! 8       4     format version (u32 LE)
//! 12      8     payload length (u64 LE)
//! 20      4     CRC32 (IEEE) of payload (u32 LE)
//! 24      n     payload
//! ```
//!
//! Files are written to a temporary sibling path and atomically renamed into
//! place, so readers never observe a torn write. Any corruption — bad magic,
//! unknown version, short read, checksum mismatch, or malformed payload —
//! surfaces as a typed [`SnapshotError`]; decoding never panics.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes identifying a snapshot file.
pub const MAGIC: [u8; 8] = *b"DCNSNAP\0";

/// Current snapshot format version. Bump on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the file container header preceding the payload.
pub const HEADER_LEN: usize = 24;

/// Typed failure surface of the snapshot subsystem. Decoding is total: every
/// malformed input maps to one of these variants, never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error (open/read/write/rename).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The payload's CRC32 does not match the header.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// The input ended before a declared length was satisfied.
    Truncated,
    /// The bytes decoded but violate an invariant (bad discriminant,
    /// impossible count, state mismatch with the rebuilt simulation).
    Corrupt(String),
    /// The component does not support snapshotting (e.g. a custom
    /// [`crate::transport::Transport`] that never implemented the hooks).
    Unsupported(&'static str),
    /// Decoding finished with unread bytes left over.
    TrailingBytes { remaining: usize },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#010x}, payload {actual:#010x})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::Unsupported(what) => {
                write!(f, "snapshotting unsupported for {what}")
            }
            SnapshotError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Append-only little-endian encoder for snapshot payloads.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far (borrow; see [`SnapWriter::into_bytes`]).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Reset for reuse as a scratch buffer, keeping the allocation. The
    /// digest layer serializes many small items through one writer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are stored by bit pattern; round-trips are exact (including
    /// NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f32(x);
        }
    }

    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }
}

/// Bounds-checked little-endian decoder over a snapshot payload. Every read
/// returns `Err(SnapshotError::Truncated)` instead of panicking when the
/// input runs out.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bad bool byte {b:#04x}"))),
        }
    }

    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a length prefix that will be used to size an allocation or loop.
    /// Rejects lengths that exceed the bytes actually remaining (with
    /// `min_elem_bytes` per element) so corrupt prefixes cannot trigger
    /// huge allocations.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.get_u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| SnapshotError::Corrupt(format!("count {n} overflows usize")))?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_count(1)?;
        self.take(n)
    }

    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b)
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 string".into()))
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        Ok(if self.get_bool()? {
            Some(self.get_f64()?)
        } else {
            None
        })
    }

    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.get_count(4)?;
        (0..n).map(|_| self.get_f32()).collect()
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }
}

/// A component whose mutable state can be captured into a snapshot payload
/// and later re-materialized in place.
///
/// `restore` is called on a freshly constructed value with identical
/// immutable structure (same config, same seeds, same model weights); it
/// overwrites only the mutable state. Implementations must write and read
/// in deterministic order — iteration over hash maps/sets is sorted by key
/// before encoding.
pub trait Restorable {
    fn save(&self, w: &mut SnapWriter);
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError>;
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// File container
// ---------------------------------------------------------------------------

/// Frame a payload in the snapshot container (magic, version, length, CRC).
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a framed container and return the payload slice.
pub fn unframe_payload(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let expected = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let len: usize = len
        .try_into()
        .map_err(|_| SnapshotError::Corrupt(format!("payload length {len} overflows usize")))?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() > len {
        return Err(SnapshotError::TrailingBytes {
            remaining: payload.len() - len,
        });
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// Write `bytes` to `path` crash-safely: the data lands in a temporary
/// sibling file, is fsync'd, and is atomically renamed into place. Readers
/// either see the old contents or the complete new contents, never a torn
/// write.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write: path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Frame and atomically write a snapshot payload to `path`.
pub fn write_snapshot_file(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    atomic_write(path, &frame_payload(payload))?;
    Ok(())
}

/// Read and validate a snapshot file, returning the payload.
pub fn read_snapshot_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let bytes = fs::read(path)?;
    let payload = unframe_payload(&bytes)?;
    let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
    let len = payload.len();
    let mut bytes = bytes;
    bytes.drain(..offset);
    bytes.truncate(len);
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Packet codec (shared by event-queue and port-queue snapshots)
// ---------------------------------------------------------------------------

use crate::packet::{Ecn, Packet, PacketFlags, PacketKind};
use crate::time::SimTime;

pub fn put_packet(w: &mut SnapWriter, p: &Packet) {
    w.put_u64(p.id);
    w.put_u64(p.flow.0);
    w.put_u32(p.src.0);
    w.put_u32(p.dst.0);
    w.put_u8(match p.kind {
        PacketKind::Data => 0,
        PacketKind::Ack => 1,
        PacketKind::Grant => 2,
    });
    w.put_u64(p.seq);
    w.put_u32(p.payload);
    w.put_u8(match p.ecn {
        Ecn::NotEct => 0,
        Ecn::Ect => 1,
        Ecn::Ce => 2,
    });
    w.put_bool(p.flags.syn);
    w.put_bool(p.flags.fin);
    w.put_bool(p.flags.ece);
    w.put_u8(p.prio);
    w.put_u8(p.ttl);
    w.put_u64(p.sent_at.0);
    w.put_u64(p.echo.0);
    w.put_u64(p.flow_size);
    w.put_u64(p.meta);
}

pub fn get_packet(r: &mut SnapReader<'_>) -> Result<Packet, SnapshotError> {
    use crate::packet::FlowId;
    use crate::topology::NodeId;
    let id = r.get_u64()?;
    let flow = FlowId(r.get_u64()?);
    let src = NodeId(r.get_u32()?);
    let dst = NodeId(r.get_u32()?);
    let kind = match r.get_u8()? {
        0 => PacketKind::Data,
        1 => PacketKind::Ack,
        2 => PacketKind::Grant,
        b => return Err(SnapshotError::Corrupt(format!("bad PacketKind {b}"))),
    };
    let seq = r.get_u64()?;
    let payload = r.get_u32()?;
    let ecn = match r.get_u8()? {
        0 => Ecn::NotEct,
        1 => Ecn::Ect,
        2 => Ecn::Ce,
        b => return Err(SnapshotError::Corrupt(format!("bad Ecn {b}"))),
    };
    let flags = PacketFlags {
        syn: r.get_bool()?,
        fin: r.get_bool()?,
        ece: r.get_bool()?,
    };
    let prio = r.get_u8()?;
    let ttl = r.get_u8()?;
    let sent_at = SimTime(r.get_u64()?);
    let echo = SimTime(r.get_u64()?);
    let flow_size = r.get_u64()?;
    let meta = r.get_u64()?;
    Ok(Packet {
        id,
        flow,
        src,
        dst,
        kind,
        seq,
        payload,
        ecn,
        flags,
        prio,
        ttl,
        sent_at,
        echo,
        flow_size,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f32(1.5e-30);
        w.put_bytes(b"hello");
        w.put_str("wörld");
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_opt_f64(Some(2.5));
        w.put_f64_slice(&[1.0, 2.0]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f32().unwrap(), 1.5e-30);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, 2.0]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(123);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn huge_count_rejected_without_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.get_f64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(matches!(
            r.finish(),
            Err(SnapshotError::TrailingBytes { remaining: 4 })
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_unframe_round_trip() {
        let payload = b"some payload bytes".to_vec();
        let framed = frame_payload(&payload);
        assert_eq!(unframe_payload(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn unframe_rejects_bad_magic() {
        let mut framed = frame_payload(b"x");
        framed[0] ^= 0xFF;
        assert!(matches!(unframe_payload(&framed), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn unframe_rejects_version_skew() {
        let mut framed = frame_payload(b"x");
        framed[8] = 0xFE;
        assert!(matches!(
            unframe_payload(&framed),
            Err(SnapshotError::UnsupportedVersion { found, .. }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn unframe_rejects_bit_flip() {
        let mut framed = frame_payload(b"payload under test");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert!(matches!(
            unframe_payload(&framed),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn unframe_rejects_truncation() {
        let framed = frame_payload(b"payload under test");
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 3] {
            assert!(matches!(
                unframe_payload(&framed[..cut]),
                Err(SnapshotError::Truncated)
            ));
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        write_snapshot_file(&path, b"alpha").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"alpha");
        // Overwrite is atomic, old content fully replaced.
        write_snapshot_file(&path, b"beta-longer-payload").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"beta-longer-payload");
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn packet_round_trip() {
        use crate::packet::FlowId;
        use crate::topology::NodeId;
        let p = Packet {
            id: 99,
            flow: FlowId(1234),
            src: NodeId(3),
            dst: NodeId(17),
            kind: PacketKind::Ack,
            seq: 1460,
            payload: 0,
            ecn: Ecn::Ce,
            flags: PacketFlags { syn: false, fin: true, ece: true },
            prio: 2,
            ttl: 61,
            sent_at: SimTime(777),
            echo: SimTime(555),
            flow_size: 1 << 20,
            meta: 42,
        };
        let mut w = SnapWriter::new();
        put_packet(&mut w, &p);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let q = get_packet(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(p, q);
    }
}
