//! Packets and their headers.
//!
//! Packets are plain values; the simulator moves them between components by
//! scheduling events. Fields mirror what MimicNet's feature extraction needs
//! to see at cluster boundaries: sizes, ECN codepoints, priorities, TTL, and
//! the identifiers required to match a packet entering a cluster with the
//! same packet leaving it (§5.1 of the paper).

use crate::time::SimTime;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a flow (a transport connection).
///
/// Flow ids are allocated deterministically per source host so that runs are
/// reproducible regardless of event interleaving.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// IP ECN codepoints (RFC 3168), as MimicNet must predict CE re-marking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced — marked by a queue.
    Ce,
}

impl Ecn {
    /// True if the packet may be CE-marked instead of dropped.
    pub fn is_capable(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }
}

/// The role a packet plays in its transport protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PacketKind {
    /// Payload-carrying segment.
    Data,
    /// Acknowledgment (cumulative; `seq` is the ack number).
    Ack,
    /// Homa-style grant; `seq` is the granted byte offset.
    Grant,
}

/// Transport flag bits carried in the header.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct PacketFlags {
    /// Connection-opening segment.
    pub syn: bool,
    /// Final segment of the flow.
    pub fin: bool,
    /// ECN-echo: receiver saw CE (DCTCP feedback).
    pub ece: bool,
}

/// Combined IP + transport header size we charge to the wire, in bytes.
pub const HEADER_BYTES: u32 = 40;

/// Default maximum payload per segment (MTU 1500 minus headers).
pub const MSS_BYTES: u32 = 1460;

/// Default TTL at the sending host.
pub const INITIAL_TTL: u8 = 64;

/// A simulated packet.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique, deterministically allocated id (host id in high
    /// bits, per-host counter in low bits).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Role of the packet.
    pub kind: PacketKind,
    /// Data: byte offset of the first payload byte. Ack: cumulative ack.
    /// Grant: granted offset.
    pub seq: u64,
    /// Payload bytes carried (0 for pure acks/grants).
    pub payload: u32,
    /// ECN codepoint, mutable by queues along the path.
    pub ecn: Ecn,
    /// Transport flags.
    pub flags: PacketFlags,
    /// Priority class (0 = highest). Used by Homa's priority queues.
    pub prio: u8,
    /// Remaining time-to-live; decremented per switch hop.
    pub ttl: u8,
    /// When the sender emitted this packet (echoed in acks for RTT).
    pub sent_at: SimTime,
    /// Timestamp echoed by the receiver (acks only): `sent_at` of the data
    /// packet being acknowledged. Used for RTT sampling.
    pub echo: SimTime,
    /// Total application bytes of the flow, carried in every data packet's
    /// header (as in Homa's message-size field). Lets a receiving host
    /// instantiate the receiver endpoint on first contact, which keeps
    /// flow setup strictly local to each side — a requirement for the
    /// parallel (PDES) execution mode.
    pub flow_size: u64,
    /// Protocol-specific scratch word (e.g. Homa grants carry the
    /// receiver's cumulative received prefix here). Zero for protocols
    /// that don't use it.
    pub meta: u64,
}

impl Packet {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.payload + HEADER_BYTES
    }

    /// A data segment for `flow` from `src` to `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        id: u64,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        payload: u32,
        ecn_capable: bool,
        now: SimTime,
    ) -> Packet {
        Packet {
            id,
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            seq,
            payload,
            ecn: if ecn_capable { Ecn::Ect } else { Ecn::NotEct },
            flags: PacketFlags::default(),
            prio: 0,
            ttl: INITIAL_TTL,
            sent_at: now,
            echo: SimTime::ZERO,
            flow_size: 0,
            meta: 0,
        }
    }

    /// A pure ack from `src` (the data receiver) back to `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn ack(
        id: u64,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        ack_no: u64,
        ece: bool,
        echo: SimTime,
        now: SimTime,
    ) -> Packet {
        Packet {
            id,
            flow,
            src,
            dst,
            kind: PacketKind::Ack,
            seq: ack_no,
            payload: 0,
            ecn: Ecn::NotEct,
            flags: PacketFlags {
                ece,
                ..PacketFlags::default()
            },
            prio: 0,
            ttl: INITIAL_TTL,
            sent_at: now,
            echo,
            flow_size: 0,
            meta: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet::data(
            1,
            FlowId(1),
            NodeId(0),
            NodeId(1),
            0,
            MSS_BYTES,
            true,
            SimTime::ZERO,
        );
        assert_eq!(p.wire_bytes(), 1500);
    }

    #[test]
    fn ack_has_no_payload() {
        let a = Packet::ack(
            2,
            FlowId(1),
            NodeId(1),
            NodeId(0),
            1460,
            true,
            SimTime::from_secs_f64(0.001),
            SimTime::from_secs_f64(0.002),
        );
        assert_eq!(a.payload, 0);
        assert_eq!(a.wire_bytes(), HEADER_BYTES);
        assert!(a.flags.ece);
        assert_eq!(a.echo, SimTime::from_secs_f64(0.001));
    }

    #[test]
    fn ecn_capability() {
        assert!(!Ecn::NotEct.is_capable());
        assert!(Ecn::Ect.is_capable());
        assert!(Ecn::Ce.is_capable());
    }
}
