//! Deterministic fault injection.
//!
//! The paper restricts MimicNet to "failure-free FatTrees" (§4.2) and only
//! speculates (Appendix A) that failures "could likely be modelled". This
//! module supplies the machinery to *violate* that restriction on purpose:
//! a seeded [`FaultPlan`] describes link outages (deterministic windows or
//! MTBF/MTTR random flaps), gray failures (time-varying loss rates), whole
//! switch failures, and degraded link rates. [`FaultPlan::compile`] lowers
//! the plan against a concrete topology into a time-sorted schedule of
//! [`FaultAction`]s that the engine drives through its event queue
//! (`EventKind::Fault`), so two runs with the same seed and plan replay
//! byte-identical fault trajectories.

use crate::error::SimError;
use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, LinkId, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// One declarative fault in a plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// A link is down during `[from, until)`.
    LinkDown {
        link: LinkId,
        from: SimTime,
        until: SimTime,
    },
    /// Every link incident to a node is down during `[from, until)` — a
    /// whole-switch (or host NIC) failure.
    SwitchDown {
        node: NodeId,
        from: SimTime,
        until: SimTime,
    },
    /// Gray failure: the link silently drops packets with probability
    /// `loss_prob` during `[from, until)` (on top of any configured
    /// baseline loss).
    GrayLoss {
        link: LinkId,
        from: SimTime,
        until: SimTime,
        loss_prob: f64,
    },
    /// Gray failure applied to every link at once (`fabric_only` restricts
    /// it to switch-to-switch links).
    GrayLossAll {
        from: SimTime,
        until: SimTime,
        loss_prob: f64,
        fabric_only: bool,
    },
    /// The link runs at `factor` of its configured bandwidth during
    /// `[from, until)` — e.g. an auto-negotiation fallback.
    DegradedRate {
        link: LinkId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    },
    /// Random link flaps: each eligible link independently alternates
    /// up/down with exponentially distributed times-to-failure (`mtbf`)
    /// and times-to-repair (`mttr`), seeded from the plan seed.
    RandomFlaps {
        mtbf: SimDuration,
        mttr: SimDuration,
        fabric_only: bool,
    },
}

/// What a compiled action does to its link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultChange {
    Down,
    Up,
    /// Set the link's additional gray-failure loss probability.
    SetLoss(f64),
    /// Set the link's bandwidth multiplier.
    SetRate(f64),
}

/// One scheduled state change of one link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultAction {
    pub time: SimTime,
    pub link: LinkId,
    pub change: FaultChange,
}

/// A seeded, declarative fault scenario, independent of any topology until
/// [`FaultPlan::compile`] lowers it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the plan's own randomness (flap schedules). Independent of
    /// the simulation seed so fault scenarios can be replayed across
    /// workloads.
    pub seed: u64,
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// No faults at all (compiles to an empty schedule; a simulation with
    /// this plan reproduces the failure-free trajectory exactly).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    pub fn link_down(mut self, link: LinkId, from: SimTime, until: SimTime) -> FaultPlan {
        self.specs.push(FaultSpec::LinkDown { link, from, until });
        self
    }

    pub fn switch_down(mut self, node: NodeId, from: SimTime, until: SimTime) -> FaultPlan {
        self.specs.push(FaultSpec::SwitchDown { node, from, until });
        self
    }

    pub fn gray_loss(
        mut self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        loss_prob: f64,
    ) -> FaultPlan {
        self.specs.push(FaultSpec::GrayLoss {
            link,
            from,
            until,
            loss_prob,
        });
        self
    }

    /// Gray loss on every link (or only fabric links) for a window.
    pub fn gray_loss_all(
        mut self,
        from: SimTime,
        until: SimTime,
        loss_prob: f64,
        fabric_only: bool,
    ) -> FaultPlan {
        self.specs.push(FaultSpec::GrayLossAll {
            from,
            until,
            loss_prob,
            fabric_only,
        });
        self
    }

    pub fn degraded_rate(
        mut self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        self.specs.push(FaultSpec::DegradedRate {
            link,
            from,
            until,
            factor,
        });
        self
    }

    pub fn random_flaps(mut self, mtbf: SimDuration, mttr: SimDuration) -> FaultPlan {
        self.specs.push(FaultSpec::RandomFlaps {
            mtbf,
            mttr,
            fabric_only: true,
        });
        self
    }

    /// Check every spec against `topo` without compiling.
    pub fn validate(&self, topo: &FatTree) -> Result<(), SimError> {
        let n_links = topo.params.num_links();
        let n_nodes = topo.params.num_nodes();
        let check_link = |l: LinkId| -> Result<(), SimError> {
            if l.0 >= n_links {
                return Err(SimError::plan(format!(
                    "link {} does not exist (topology has {n_links} links)",
                    l.0
                )));
            }
            Ok(())
        };
        let check_window = |from: SimTime, until: SimTime| -> Result<(), SimError> {
            if from >= until {
                return Err(SimError::plan(format!(
                    "empty fault window [{from:?}, {until:?})"
                )));
            }
            Ok(())
        };
        let check_prob = |p: f64| -> Result<(), SimError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::plan(format!(
                    "loss probability {p} must lie in [0, 1]"
                )));
            }
            Ok(())
        };
        for spec in &self.specs {
            match *spec {
                FaultSpec::LinkDown { link, from, until } => {
                    check_link(link)?;
                    check_window(from, until)?;
                }
                FaultSpec::SwitchDown { node, from, until } => {
                    if node.0 >= n_nodes {
                        return Err(SimError::plan(format!(
                            "node {} does not exist (topology has {n_nodes} nodes)",
                            node.0
                        )));
                    }
                    check_window(from, until)?;
                }
                FaultSpec::GrayLoss {
                    link,
                    from,
                    until,
                    loss_prob,
                } => {
                    check_link(link)?;
                    check_window(from, until)?;
                    check_prob(loss_prob)?;
                }
                FaultSpec::GrayLossAll {
                    from,
                    until,
                    loss_prob,
                    ..
                } => {
                    check_window(from, until)?;
                    check_prob(loss_prob)?;
                }
                FaultSpec::DegradedRate {
                    link,
                    from,
                    until,
                    factor,
                } => {
                    check_link(link)?;
                    check_window(from, until)?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(SimError::plan(format!(
                            "rate factor {factor} must lie in (0, 1]"
                        )));
                    }
                }
                FaultSpec::RandomFlaps { mtbf, mttr, .. } => {
                    if mtbf.as_nanos() == 0 || mttr.as_nanos() == 0 {
                        return Err(SimError::plan("MTBF and MTTR must be positive".to_string()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Lower the plan into a deterministic, time-sorted action schedule for
    /// a run of `[0, end)` over `topo`. Actions past `end` are elided.
    pub fn compile(&self, topo: &FatTree, end: SimTime) -> Result<Vec<FaultAction>, SimError> {
        self.validate(topo)?;
        let mut actions = Vec::new();
        let window = |out: &mut Vec<FaultAction>,
                          link: LinkId,
                          from: SimTime,
                          until: SimTime,
                          on: FaultChange,
                          off: FaultChange| {
            if from >= end {
                return;
            }
            out.push(FaultAction {
                time: from,
                link,
                change: on,
            });
            if until < end {
                out.push(FaultAction {
                    time: until,
                    link,
                    change: off,
                });
            }
        };
        for spec in &self.specs {
            match *spec {
                FaultSpec::LinkDown { link, from, until } => {
                    window(
                        &mut actions,
                        link,
                        from,
                        until,
                        FaultChange::Down,
                        FaultChange::Up,
                    );
                }
                FaultSpec::SwitchDown { node, from, until } => {
                    for link in incident_links(topo, node) {
                        window(
                            &mut actions,
                            link,
                            from,
                            until,
                            FaultChange::Down,
                            FaultChange::Up,
                        );
                    }
                }
                FaultSpec::GrayLoss {
                    link,
                    from,
                    until,
                    loss_prob,
                } => {
                    window(
                        &mut actions,
                        link,
                        from,
                        until,
                        FaultChange::SetLoss(loss_prob),
                        FaultChange::SetLoss(0.0),
                    );
                }
                FaultSpec::GrayLossAll {
                    from,
                    until,
                    loss_prob,
                    fabric_only,
                } => {
                    for l in 0..topo.params.num_links() {
                        let link = LinkId(l);
                        if fabric_only && topo.is_host_link(link) {
                            continue;
                        }
                        window(
                            &mut actions,
                            link,
                            from,
                            until,
                            FaultChange::SetLoss(loss_prob),
                            FaultChange::SetLoss(0.0),
                        );
                    }
                }
                FaultSpec::DegradedRate {
                    link,
                    from,
                    until,
                    factor,
                } => {
                    window(
                        &mut actions,
                        link,
                        from,
                        until,
                        FaultChange::SetRate(factor),
                        FaultChange::SetRate(1.0),
                    );
                }
                FaultSpec::RandomFlaps {
                    mtbf,
                    mttr,
                    fabric_only,
                } => {
                    for l in 0..topo.params.num_links() {
                        let link = LinkId(l);
                        if fabric_only && topo.is_host_link(link) {
                            continue;
                        }
                        // Per-link stream derived from the *plan* seed, so
                        // the flap trajectory is a pure function of
                        // (seed, link) — independent of spec order.
                        let mut rng = SplitMix64::derive(self.seed, 0xF1A9_0000 ^ l as u64);
                        let mut t = SimTime::ZERO;
                        loop {
                            t += exp_duration(&mut rng, mtbf);
                            if t >= end {
                                break;
                            }
                            let repair = t + exp_duration(&mut rng, mttr);
                            window(
                                &mut actions,
                                link,
                                t,
                                repair,
                                FaultChange::Down,
                                FaultChange::Up,
                            );
                            t = repair;
                            if t >= end {
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Total deterministic order; the engine schedules actions by index,
        // so simultaneous actions apply in this (stable) order.
        actions.sort_by(|a, b| {
            (a.time, a.link.0)
                .cmp(&(b.time, b.link.0))
                .then_with(|| change_rank(a.change).cmp(&change_rank(b.change)))
        });
        Ok(actions)
    }
}

fn change_rank(c: FaultChange) -> u8 {
    match c {
        // Repairs before failures at the same instant: a window closing
        // exactly when another opens leaves the link in the failed state.
        FaultChange::Up => 0,
        FaultChange::Down => 1,
        FaultChange::SetLoss(_) => 2,
        FaultChange::SetRate(_) => 3,
    }
}

/// Exponentially distributed duration with the given mean, floored at 1 ns
/// so time always advances.
fn exp_duration(rng: &mut SplitMix64, mean: SimDuration) -> SimDuration {
    let ns = rng.exp(mean.as_nanos() as f64);
    SimDuration::from_nanos((ns.max(1.0).min(u64::MAX as f64 / 2.0)) as u64)
}

/// Every link with `node` as an endpoint.
pub fn incident_links(topo: &FatTree, node: NodeId) -> Vec<LinkId> {
    let p = topo.params;
    match topo.kind(node) {
        NodeKind::Host => vec![topo.host_link(node)],
        NodeKind::Tor => {
            let (c, r) = topo.tor_coords(node);
            let mut v: Vec<LinkId> = (0..p.hosts_per_rack)
                .map(|s| topo.host_link(topo.host(c, r, s)))
                .collect();
            v.extend((0..p.aggs_per_cluster).map(|a| topo.tor_agg_link(c, r, a)));
            v
        }
        NodeKind::Agg => {
            let (c, a) = topo.agg_coords(node);
            let mut v: Vec<LinkId> = (0..p.racks_per_cluster)
                .map(|r| topo.tor_agg_link(c, r, a))
                .collect();
            v.extend((0..p.cores_per_agg).map(|j| topo.agg_core_link(c, a, j)));
            v
        }
        NodeKind::Core => {
            let (a, j) = topo.core_coords(node);
            (0..p.clusters)
                .map(|c| topo.agg_core_link(c, a, j))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeParams;

    fn topo() -> FatTree {
        FatTree::new(FatTreeParams::new(4, 2, 2, 2, 2))
    }

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let t = topo();
        assert!(FaultPlan::none().compile(&t, s(1.0)).unwrap().is_empty());
    }

    #[test]
    fn link_window_emits_down_then_up() {
        let t = topo();
        let plan = FaultPlan::new(1).link_down(LinkId(3), s(0.1), s(0.2));
        let acts = plan.compile(&t, s(1.0)).unwrap();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[0].change, FaultChange::Down);
        assert_eq!(acts[1].change, FaultChange::Up);
        assert!(acts[0].time < acts[1].time);
    }

    #[test]
    fn window_past_end_is_elided() {
        let t = topo();
        let plan = FaultPlan::new(1)
            .link_down(LinkId(0), s(2.0), s(3.0)) // entirely after end
            .link_down(LinkId(1), s(0.5), s(3.0)); // up is after end
        let acts = plan.compile(&t, s(1.0)).unwrap();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].link, LinkId(1));
        assert_eq!(acts[0].change, FaultChange::Down);
    }

    #[test]
    fn switch_down_covers_all_incident_links() {
        let t = topo();
        let agg = t.agg(1, 0);
        let plan = FaultPlan::new(1).switch_down(agg, s(0.1), s(0.2));
        let acts = plan.compile(&t, s(1.0)).unwrap();
        // racks_per_cluster tor links + cores_per_agg core links, down+up each.
        assert_eq!(acts.len(), 2 * (2 + 2));
        for a in &acts {
            let links = incident_links(&t, agg);
            assert!(links.contains(&a.link), "{a:?} not incident to {agg:?}");
        }
    }

    #[test]
    fn incident_links_match_link_ends() {
        let t = topo();
        for n in 0..t.params.num_nodes() {
            let node = NodeId(n);
            for l in incident_links(&t, node) {
                let (lo, hi) = t.link_ends(l);
                assert!(lo == node || hi == node);
            }
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let t = topo();
        let plan = FaultPlan::new(77)
            .random_flaps(SimDuration::from_millis(100), SimDuration::from_millis(20))
            .gray_loss_all(s(0.2), s(0.6), 0.01, true);
        let a = plan.compile(&t, s(1.0)).unwrap();
        let b = plan.compile(&t, s(1.0)).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time), "unsorted");
    }

    #[test]
    fn random_flaps_alternate_per_link() {
        let t = topo();
        let plan = FaultPlan::new(3).random_flaps(
            SimDuration::from_millis(50),
            SimDuration::from_millis(10),
        );
        let acts = plan.compile(&t, s(1.0)).unwrap();
        assert!(!acts.is_empty());
        // Per link: strictly alternating Down/Up starting with Down.
        for l in 0..t.params.num_links() {
            let seq: Vec<FaultChange> = acts
                .iter()
                .filter(|a| a.link == LinkId(l))
                .map(|a| a.change)
                .collect();
            for (i, c) in seq.iter().enumerate() {
                let want = if i % 2 == 0 {
                    FaultChange::Down
                } else {
                    FaultChange::Up
                };
                assert_eq!(*c, want, "link {l} action {i}");
            }
        }
        // Host links are untouched (fabric_only).
        assert!(acts.iter().all(|a| !t.is_host_link(a.link)));
    }

    #[test]
    fn rejects_out_of_range_inputs() {
        let t = topo();
        let bad_link = FaultPlan::new(1).link_down(LinkId(10_000), s(0.1), s(0.2));
        assert!(matches!(
            bad_link.compile(&t, s(1.0)),
            Err(SimError::InvalidFaultPlan { .. })
        ));
        let bad_prob = FaultPlan::new(1).gray_loss(LinkId(0), s(0.1), s(0.2), 1.5);
        assert!(bad_prob.compile(&t, s(1.0)).is_err());
        let bad_window = FaultPlan::new(1).link_down(LinkId(0), s(0.5), s(0.5));
        assert!(bad_window.compile(&t, s(1.0)).is_err());
        let bad_factor = FaultPlan::new(1).degraded_rate(LinkId(0), s(0.1), s(0.2), 0.0);
        assert!(bad_factor.compile(&t, s(1.0)).is_err());
    }

    #[test]
    fn plan_serializes() {
        let plan = FaultPlan::new(9)
            .link_down(LinkId(2), s(0.1), s(0.3))
            .gray_loss(LinkId(4), s(0.2), s(0.4), 0.05);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
