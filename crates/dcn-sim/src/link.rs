//! Full-duplex links.
//!
//! A link connects a lower-tier node to an upper-tier node (host→ToR,
//! ToR→Agg, Agg→Core). Each direction has its own transmitter: an output
//! queue (at the sending node's port) plus a busy flag modelling
//! serialization. Propagation delay is applied after serialization
//! completes, so a packet of `B` bytes arrives `B·8/bw + latency` after
//! transmission begins — exactly the OMNeT++/INET channel model the paper's
//! simulations use.

use crate::queue::{PortQueue, QueueConfig};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Direction of travel over a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Dir {
    /// From the lower-tier endpoint toward the upper tier (e.g. host→ToR).
    Up,
    /// From the upper-tier endpoint toward the lower tier.
    Down,
}

impl Dir {
    pub fn index(self) -> usize {
        match self {
            Dir::Up => 0,
            Dir::Down => 1,
        }
    }

    pub fn opposite(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

/// Static link properties.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::serialization(bytes as u64, self.bandwidth_bps)
    }
}

/// Mutable health state of a link, driven by the fault subsystem
/// ([`crate::fault`]). A healthy link has `up = true`, no extra loss, and
/// full rate.
#[derive(Clone, Copy, Debug)]
pub struct LinkHealth {
    /// False while the link is failed: transmitters stall (packets queue
    /// but nothing starts serializing) until the link comes back up.
    pub up: bool,
    /// Additional Bernoulli loss probability layered on top of the
    /// configured baseline (gray failure). Effective loss is clamped to 1.
    pub extra_loss: f64,
    /// Multiplier on bandwidth in `(0, 1]`; values below 1 model a link
    /// negotiated down to a degraded rate.
    pub rate_factor: f64,
}

impl Default for LinkHealth {
    fn default() -> LinkHealth {
        LinkHealth {
            up: true,
            extra_loss: 0.0,
            rate_factor: 1.0,
        }
    }
}

/// One direction's transmitter: output queue plus serialization state.
#[derive(Debug)]
pub struct Transmitter {
    /// The output queue feeding this transmitter.
    pub queue: PortQueue,
    /// True while a packet is being serialized onto the wire.
    pub busy: bool,
}

impl Transmitter {
    pub fn new(queue_cfg: QueueConfig) -> Transmitter {
        Transmitter {
            queue: PortQueue::new(queue_cfg),
            busy: false,
        }
    }
}

/// A full-duplex link instance owned by the engine.
#[derive(Debug)]
pub struct DuplexLink {
    pub spec: LinkSpec,
    /// Transmitters indexed by [`Dir::index`].
    pub tx: [Transmitter; 2],
    /// Fault-injection state; defaults to healthy.
    pub health: LinkHealth,
}

impl DuplexLink {
    pub fn new(spec: LinkSpec, up_queue: QueueConfig, down_queue: QueueConfig) -> DuplexLink {
        DuplexLink {
            spec,
            tx: [Transmitter::new(up_queue), Transmitter::new(down_queue)],
            health: LinkHealth::default(),
        }
    }

    /// Serialization time for `bytes` at the link's current (possibly
    /// degraded) rate. The healthy path is bit-identical to
    /// [`LinkSpec::serialization`] — no float arithmetic is introduced
    /// unless the rate is actually degraded.
    pub fn effective_serialization(&self, bytes: u32) -> SimDuration {
        if self.health.rate_factor >= 1.0 {
            self.spec.serialization(bytes)
        } else {
            let bw = ((self.spec.bandwidth_bps as f64) * self.health.rate_factor).max(1.0) as u64;
            SimDuration::serialization(bytes as u64, bw)
        }
    }

    pub fn tx_mut(&mut self, dir: Dir) -> &mut Transmitter {
        &mut self.tx[dir.index()]
    }

    pub fn tx(&self, dir: Dir) -> &Transmitter {
        &self.tx[dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_roundtrip() {
        assert_eq!(Dir::Up.opposite(), Dir::Down);
        assert_eq!(Dir::Down.opposite(), Dir::Up);
        assert_eq!(Dir::Up.index(), 0);
        assert_eq!(Dir::Down.index(), 1);
    }

    #[test]
    fn serialization_uses_wire_bytes() {
        let spec = LinkSpec {
            bandwidth_bps: 10_000_000, // 10 Mbps
            latency: SimDuration::from_micros(20),
        };
        // 1500 B at 10 Mbps = 1.2 ms.
        assert_eq!(spec.serialization(1500).as_nanos(), 1_200_000);
    }

    #[test]
    fn transmitters_are_independent() {
        let mut l = DuplexLink::new(
            LinkSpec {
                bandwidth_bps: 1_000_000,
                latency: SimDuration::from_micros(1),
            },
            QueueConfig::drop_tail(10_000),
            QueueConfig::drop_tail(10_000),
        );
        l.tx_mut(Dir::Up).busy = true;
        assert!(l.tx(Dir::Up).busy);
        assert!(!l.tx(Dir::Down).busy);
    }

    #[test]
    fn degraded_rate_slows_serialization() {
        let mut l = DuplexLink::new(
            LinkSpec {
                bandwidth_bps: 10_000_000,
                latency: SimDuration::from_micros(20),
            },
            QueueConfig::drop_tail(10_000),
            QueueConfig::drop_tail(10_000),
        );
        let healthy = l.effective_serialization(1500);
        assert_eq!(healthy, l.spec.serialization(1500));
        l.health.rate_factor = 0.5;
        let degraded = l.effective_serialization(1500);
        assert_eq!(degraded.as_nanos(), 2 * healthy.as_nanos());
    }
}
