//! Full-duplex links.
//!
//! A link connects a lower-tier node to an upper-tier node (host→ToR,
//! ToR→Agg, Agg→Core). Each direction has its own transmitter: an output
//! queue (at the sending node's port) plus a busy flag modelling
//! serialization. Propagation delay is applied after serialization
//! completes, so a packet of `B` bytes arrives `B·8/bw + latency` after
//! transmission begins — exactly the OMNeT++/INET channel model the paper's
//! simulations use.

use crate::queue::{PortQueue, QueueConfig};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Direction of travel over a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Dir {
    /// From the lower-tier endpoint toward the upper tier (e.g. host→ToR).
    Up,
    /// From the upper-tier endpoint toward the lower tier.
    Down,
}

impl Dir {
    pub fn index(self) -> usize {
        match self {
            Dir::Up => 0,
            Dir::Down => 1,
        }
    }

    pub fn opposite(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

/// Static link properties.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::serialization(bytes as u64, self.bandwidth_bps)
    }
}

/// One direction's transmitter: output queue plus serialization state.
#[derive(Debug)]
pub struct Transmitter {
    /// The output queue feeding this transmitter.
    pub queue: PortQueue,
    /// True while a packet is being serialized onto the wire.
    pub busy: bool,
}

impl Transmitter {
    pub fn new(queue_cfg: QueueConfig) -> Transmitter {
        Transmitter {
            queue: PortQueue::new(queue_cfg),
            busy: false,
        }
    }
}

/// A full-duplex link instance owned by the engine.
#[derive(Debug)]
pub struct DuplexLink {
    pub spec: LinkSpec,
    /// Transmitters indexed by [`Dir::index`].
    pub tx: [Transmitter; 2],
}

impl DuplexLink {
    pub fn new(spec: LinkSpec, up_queue: QueueConfig, down_queue: QueueConfig) -> DuplexLink {
        DuplexLink {
            spec,
            tx: [Transmitter::new(up_queue), Transmitter::new(down_queue)],
        }
    }

    pub fn tx_mut(&mut self, dir: Dir) -> &mut Transmitter {
        &mut self.tx[dir.index()]
    }

    pub fn tx(&self, dir: Dir) -> &Transmitter {
        &self.tx[dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_roundtrip() {
        assert_eq!(Dir::Up.opposite(), Dir::Down);
        assert_eq!(Dir::Down.opposite(), Dir::Up);
        assert_eq!(Dir::Up.index(), 0);
        assert_eq!(Dir::Down.index(), 1);
    }

    #[test]
    fn serialization_uses_wire_bytes() {
        let spec = LinkSpec {
            bandwidth_bps: 10_000_000, // 10 Mbps
            latency: SimDuration::from_micros(20),
        };
        // 1500 B at 10 Mbps = 1.2 ms.
        assert_eq!(spec.serialization(1500).as_nanos(), 1_200_000);
    }

    #[test]
    fn transmitters_are_independent() {
        let mut l = DuplexLink::new(
            LinkSpec {
                bandwidth_bps: 1_000_000,
                latency: SimDuration::from_micros(1),
            },
            QueueConfig::drop_tail(10_000),
            QueueConfig::drop_tail(10_000),
        );
        l.tx_mut(Dir::Up).busy = true;
        assert!(l.tx(Dir::Up).busy);
        assert!(!l.tx(Dir::Down).busy);
    }
}
