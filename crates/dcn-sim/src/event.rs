//! The discrete-event core: events, deterministic ordering, and the event
//! queue.
//!
//! Simulators "take a massive distributed system and serialize it into a
//! single event queue" (§2.2). Correctness of that serialization — and the
//! bit-equality of sequential and parallel executions — depends on a *total*
//! order over simultaneous events. Events are therefore ordered by
//! `(time, class, tag, seq)` where `class` fixes the relative order of event
//! types, `tag` is a stable key derived from the event's structure (packet
//! id, link id, timer identity) that is identical however the event was
//! produced, and `seq` is a last-resort insertion tiebreak.

use crate::link::Dir;
use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The payload of a scheduled event.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A transmitter finished serializing a packet; it may start the next.
    TxDone { link: LinkId, dir: Dir },
    /// A packet fully arrived at a node (after serialization + propagation).
    Arrive { node: NodeId, packet: Packet },
    /// A transport timer registered by a host's flow fired.
    Timer {
        host: NodeId,
        flow: FlowId,
        token: u64,
    },
    /// The traffic generator should start this host's next flow.
    FlowArrival { host: NodeId },
    /// A Mimic cluster's feeder model wants a wakeup.
    FeederWake { cluster: u32 },
    /// A scheduled fault action takes effect. `index` points into the
    /// engine's compiled [`crate::fault::FaultAction`] schedule.
    Fault { index: u32 },
}

impl EventKind {
    /// Number of event-kind variants (size for per-kind counter arrays).
    pub const COUNT: usize = 6;

    /// Dense per-kind index (the class rank), for per-event-type counters
    /// in the observability layer.
    pub fn index(&self) -> usize {
        self.class() as usize
    }

    /// Stable snake_case name for reports and trace files, indexed
    /// consistently with [`EventKind::index`].
    pub fn name_of(index: usize) -> &'static str {
        const NAMES: [&str; EventKind::COUNT] = [
            "fault",
            "tx_done",
            "arrive",
            "timer",
            "flow_arrival",
            "feeder_wake",
        ];
        NAMES[index]
    }

    /// Class rank: fixes processing order among different event types that
    /// share a timestamp. Fault state changes apply first so every other
    /// event at the same instant observes the new link health; transmitter
    /// completions come next so freed links are observable by packets
    /// arriving at the same instant.
    fn class(&self) -> u8 {
        match self {
            EventKind::Fault { .. } => 0,
            EventKind::TxDone { .. } => 1,
            EventKind::Arrive { .. } => 2,
            EventKind::Timer { .. } => 3,
            EventKind::FlowArrival { .. } => 4,
            EventKind::FeederWake { .. } => 5,
        }
    }

    /// Structural tag: a stable u64 key independent of scheduling order.
    fn tag(&self) -> u64 {
        match self {
            EventKind::TxDone { link, dir } => ((link.0 as u64) << 1) | dir.index() as u64,
            EventKind::Arrive { node, packet } => {
                // Packet ids are globally unique; include the node so a
                // (theoretical) duplicate delivery still orders stably.
                packet.id ^ ((node.0 as u64) << 48)
            }
            EventKind::Timer { host, flow, token } => {
                ((host.0 as u64) << 40) ^ (flow.0 << 8) ^ token
            }
            EventKind::FlowArrival { host } => host.0 as u64,
            EventKind::FeederWake { cluster } => *cluster as u64,
            // Schedule indices are unique and pre-sorted, so simultaneous
            // fault actions apply in compiled order.
            EventKind::Fault { index } => *index as u64,
        }
    }
}

/// A scheduled event with its full ordering key.
#[derive(Clone, Debug)]
pub struct Event {
    pub time: SimTime,
    pub kind: EventKind,
    class: u8,
    tag: u64,
    seq: u64,
}

impl Event {
    pub fn new(time: SimTime, kind: EventKind, seq: u64) -> Event {
        Event {
            time,
            class: kind.class(),
            tag: kind.tag(),
            kind,
            seq,
        }
    }

    fn key(&self) -> (SimTime, u8, u64, u64) {
        (self.time, self.class, self.tag, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// The future event list.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
    scheduled: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Event::new(time, kind, self.seq));
    }

    /// Pop the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the paper's "events/second" metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

// ---------------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------------

use crate::snapshot::{self, SnapReader, SnapWriter, SnapshotError};

impl EventKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            EventKind::TxDone { link, dir } => {
                w.put_u8(0);
                w.put_u32(link.0);
                w.put_u8(dir.index() as u8);
            }
            EventKind::Arrive { node, packet } => {
                w.put_u8(1);
                w.put_u32(node.0);
                snapshot::put_packet(w, packet);
            }
            EventKind::Timer { host, flow, token } => {
                w.put_u8(2);
                w.put_u32(host.0);
                w.put_u64(flow.0);
                w.put_u64(*token);
            }
            EventKind::FlowArrival { host } => {
                w.put_u8(3);
                w.put_u32(host.0);
            }
            EventKind::FeederWake { cluster } => {
                w.put_u8(4);
                w.put_u32(*cluster);
            }
            EventKind::Fault { index } => {
                w.put_u8(5);
                w.put_u32(*index);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<EventKind, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => EventKind::TxDone {
                link: LinkId(r.get_u32()?),
                dir: match r.get_u8()? {
                    0 => Dir::Up,
                    1 => Dir::Down,
                    b => return Err(SnapshotError::Corrupt(format!("bad Dir {b}"))),
                },
            },
            1 => EventKind::Arrive {
                node: NodeId(r.get_u32()?),
                packet: snapshot::get_packet(r)?,
            },
            2 => EventKind::Timer {
                host: NodeId(r.get_u32()?),
                flow: FlowId(r.get_u64()?),
                token: r.get_u64()?,
            },
            3 => EventKind::FlowArrival {
                host: NodeId(r.get_u32()?),
            },
            4 => EventKind::FeederWake {
                cluster: r.get_u32()?,
            },
            5 => EventKind::Fault {
                index: r.get_u32()?,
            },
            b => return Err(SnapshotError::Corrupt(format!("bad EventKind {b}"))),
        })
    }
}

impl EventQueue {
    /// Serialize the full future event list plus scheduling counters.
    ///
    /// Events are written in deterministic pop order (by draining a clone of
    /// the heap), and each event keeps its original insertion `seq`, so the
    /// restored queue reproduces the exact total order — including
    /// last-resort `seq` tiebreaks — of the uninterrupted run.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.heap.len() as u64);
        let mut drain = self.heap.clone();
        while let Some(e) = drain.pop() {
            w.put_u64(e.time.0);
            w.put_u64(e.seq);
            e.kind.save(w);
        }
        w.put_u64(self.seq);
        w.put_u64(self.scheduled);
    }

    /// Rebuild the future event list from [`EventQueue::save_state`] bytes.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(17)?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time = SimTime(r.get_u64()?);
            let seq = r.get_u64()?;
            let kind = EventKind::load(r)?;
            heap.push(Event::new(time, kind, seq));
        }
        self.heap = heap;
        self.seq = r.get_u64()?;
        self.scheduled = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), EventKind::FlowArrival { host: NodeId(1) });
        q.schedule(t(10), EventKind::FlowArrival { host: NodeId(2) });
        q.schedule(t(20), EventKind::FlowArrival { host: NodeId(3) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn class_order_at_same_time() {
        let mut q = EventQueue::new();
        let time = t(5);
        q.schedule(time, EventKind::FlowArrival { host: NodeId(1) });
        q.schedule(
            time,
            EventKind::Timer {
                host: NodeId(1),
                flow: FlowId(1),
                token: 0,
            },
        );
        q.schedule(
            time,
            EventKind::TxDone {
                link: LinkId(0),
                dir: Dir::Up,
            },
        );
        q.schedule(time, EventKind::Fault { index: 0 });
        let classes: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Fault { .. } => 0,
                EventKind::TxDone { .. } => 1,
                EventKind::Arrive { .. } => 2,
                EventKind::Timer { .. } => 3,
                EventKind::FlowArrival { .. } => 4,
                EventKind::FeederWake { .. } => 5,
            })
            .collect();
        assert_eq!(classes, vec![0, 1, 3, 4]);
    }

    #[test]
    fn tag_breaks_ties_independent_of_insertion_order() {
        // Two FlowArrival events at the same instant must pop in host order
        // regardless of scheduling order.
        for flip in [false, true] {
            let mut q = EventQueue::new();
            let (a, b) = if flip {
                (NodeId(9), NodeId(3))
            } else {
                (NodeId(3), NodeId(9))
            };
            q.schedule(t(7), EventKind::FlowArrival { host: a });
            q.schedule(t(7), EventKind::FlowArrival { host: b });
            let hosts: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::FlowArrival { host } => host.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(hosts, vec![3, 9]);
        }
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(i), EventKind::FlowArrival { host: NodeId(0) });
        }
        assert_eq!(q.total_scheduled(), 10);
        assert_eq!(q.len(), 10);
        q.pop();
        assert_eq!(q.total_scheduled(), 10);
        assert_eq!(q.len(), 9);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::ZERO + SimDuration::from_millis(2),
            EventKind::FeederWake { cluster: 0 },
        );
        q.schedule(
            SimTime::ZERO + SimDuration::from_millis(1),
            EventKind::FeederWake { cluster: 1 },
        );
        assert_eq!(q.peek_time(), Some(t(1_000_000)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, t(1_000_000));
    }
}
