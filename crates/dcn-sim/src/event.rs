//! The discrete-event core: events, deterministic ordering, and the event
//! queue.
//!
//! Simulators "take a massive distributed system and serialize it into a
//! single event queue" (§2.2). Correctness of that serialization — and the
//! bit-equality of sequential and parallel executions — depends on a *total*
//! order over simultaneous events. Events are therefore ordered by
//! `(time, class, tag, seq)` where `class` fixes the relative order of event
//! types, `tag` is a stable key derived from the event's structure (packet
//! id, link id, timer identity) that is identical however the event was
//! produced, and `seq` is a last-resort insertion tiebreak.

//! Two interchangeable queue implementations back the engine:
//!
//! * [`PooledEventQueue`] (the default) keeps event payloads in a slab of
//!   pooled nodes linked by `u32` indices with a freelist, and orders them
//!   through a binary heap *of indices*. Sifting moves 4-byte indices, not
//!   whole `Event` values, so `Arrive` events stop copying their
//!   `Packet` payloads through the heap, and completed nodes are recycled
//!   instead of reallocated.
//! * [`HeapEventQueue`] is the original `BinaryHeap<Event>` kept as the
//!   debug/reference implementation; property tests lock the two to
//!   byte-identical orderings and snapshots.

use crate::link::Dir;
use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The payload of a scheduled event.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A transmitter finished serializing a packet; it may start the next.
    TxDone { link: LinkId, dir: Dir },
    /// A packet fully arrived at a node (after serialization + propagation).
    Arrive { node: NodeId, packet: Packet },
    /// A transport timer registered by a host's flow fired.
    Timer {
        host: NodeId,
        flow: FlowId,
        token: u64,
    },
    /// The traffic generator should start this host's next flow.
    FlowArrival { host: NodeId },
    /// A Mimic cluster's feeder model wants a wakeup.
    FeederWake { cluster: u32 },
    /// A scheduled fault action takes effect. `index` points into the
    /// engine's compiled [`crate::fault::FaultAction`] schedule.
    Fault { index: u32 },
}

impl EventKind {
    /// Number of event-kind variants (size for per-kind counter arrays).
    pub const COUNT: usize = 6;

    /// Dense per-kind index (the class rank), for per-event-type counters
    /// in the observability layer.
    pub fn index(&self) -> usize {
        self.class() as usize
    }

    /// Stable snake_case name for reports and trace files, indexed
    /// consistently with [`EventKind::index`].
    pub fn name_of(index: usize) -> &'static str {
        const NAMES: [&str; EventKind::COUNT] = [
            "fault",
            "tx_done",
            "arrive",
            "timer",
            "flow_arrival",
            "feeder_wake",
        ];
        NAMES[index]
    }

    /// Class rank: fixes processing order among different event types that
    /// share a timestamp. Fault state changes apply first so every other
    /// event at the same instant observes the new link health; transmitter
    /// completions come next so freed links are observable by packets
    /// arriving at the same instant.
    fn class(&self) -> u8 {
        match self {
            EventKind::Fault { .. } => 0,
            EventKind::TxDone { .. } => 1,
            EventKind::Arrive { .. } => 2,
            EventKind::Timer { .. } => 3,
            EventKind::FlowArrival { .. } => 4,
            EventKind::FeederWake { .. } => 5,
        }
    }

    /// Structural tag: a stable u64 key independent of scheduling order.
    fn tag(&self) -> u64 {
        match self {
            EventKind::TxDone { link, dir } => ((link.0 as u64) << 1) | dir.index() as u64,
            EventKind::Arrive { node, packet } => {
                // Packet ids are globally unique; include the node so a
                // (theoretical) duplicate delivery still orders stably.
                packet.id ^ ((node.0 as u64) << 48)
            }
            EventKind::Timer { host, flow, token } => {
                ((host.0 as u64) << 40) ^ (flow.0 << 8) ^ token
            }
            EventKind::FlowArrival { host } => host.0 as u64,
            EventKind::FeederWake { cluster } => *cluster as u64,
            // Schedule indices are unique and pre-sorted, so simultaneous
            // fault actions apply in compiled order.
            EventKind::Fault { index } => *index as u64,
        }
    }
}

/// A scheduled event with its full ordering key.
#[derive(Clone, Debug)]
pub struct Event {
    pub time: SimTime,
    pub kind: EventKind,
    class: u8,
    tag: u64,
    seq: u64,
}

impl Event {
    pub fn new(time: SimTime, kind: EventKind, seq: u64) -> Event {
        Event {
            time,
            class: kind.class(),
            tag: kind.tag(),
            kind,
            seq,
        }
    }

    fn key(&self) -> (SimTime, u8, u64, u64) {
        (self.time, self.class, self.tag, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// The original future event list: a `BinaryHeap` of whole [`Event`]
/// values. Kept as the debug/reference implementation the pooled queue is
/// property-tested against; every sift copies the full event (including any
/// `Arrive` packet payload), which is exactly the constant factor
/// [`PooledEventQueue`] removes.
#[derive(Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
    scheduled: u64,
}

impl HeapEventQueue {
    pub fn new() -> HeapEventQueue {
        HeapEventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Event::new(time, kind, self.seq));
    }

    /// Pop the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the paper's "events/second" metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

/// Index marking the end of the freelist / an unlinked node.
const NIL: u32 = u32::MAX;

/// One pooled event node. Freed nodes stay in the slab (their `kind`
/// replaced by a placeholder — `EventKind` owns no heap data, so stale
/// payload bytes are inert) and are chained through `next_free` for reuse.
#[derive(Debug)]
struct Node {
    time: SimTime,
    class: u8,
    tag: u64,
    seq: u64,
    kind: EventKind,
    /// Freelist link; `NIL` while the node is live in the heap.
    next_free: u32,
}

impl Node {
    #[inline]
    fn key(&self) -> (SimTime, u8, u64, u64) {
        (self.time, self.class, self.tag, self.seq)
    }
}

/// Placeholder written into freed nodes so the previous payload (possibly a
/// packet-carrying `Arrive`) is moved out rather than cloned.
#[inline]
fn tombstone() -> EventKind {
    EventKind::Fault { index: NIL }
}

/// Slab-backed future event list. Event payloads live in pooled [`Node`]s
/// addressed by `u32` index; ordering is a hand-rolled binary min-heap over
/// those indices comparing the same `(time, class, tag, seq)` key as the
/// reference implementation, so pop order is bit-identical. Completed nodes
/// are pushed onto an intrusive freelist and recycled, so a steady-state
/// simulation stops allocating per event entirely once the slab has grown to
/// the high-water mark of in-flight events.
pub struct PooledEventQueue {
    nodes: Vec<Node>,
    /// Head of the freed-node chain (`NIL` when every node is live).
    free_head: u32,
    /// Binary min-heap of slab indices ordered by `Node::key`.
    heap: Vec<u32>,
    seq: u64,
    scheduled: u64,
}

impl Default for PooledEventQueue {
    fn default() -> PooledEventQueue {
        PooledEventQueue {
            nodes: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
            seq: 0,
            scheduled: 0,
        }
    }
}

impl PooledEventQueue {
    pub fn new() -> PooledEventQueue {
        PooledEventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.scheduled += 1;
        let seq = self.seq;
        self.insert(time, kind, seq);
    }

    /// Core insert preserving an explicit `seq` (used both by `schedule`
    /// and by snapshot restore, which must keep original tiebreaks).
    fn insert(&mut self, time: SimTime, kind: EventKind, seq: u64) {
        let class = kind.class();
        let tag = kind.tag();
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next_free;
            node.time = time;
            node.class = class;
            node.tag = tag;
            node.seq = seq;
            node.kind = kind;
            node.next_free = NIL;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("event pool exceeds u32 indices");
            self.nodes.push(Node {
                time,
                class,
                tag,
                seq,
                kind,
                next_free: NIL,
            });
            idx
        };
        self.heap.push(idx);
        self.sift_up(self.heap.len() - 1);
    }

    /// Pop the next event in deterministic order, recycling its node.
    pub fn pop(&mut self) -> Option<Event> {
        let root = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let node = &mut self.nodes[root as usize];
        let time = node.time;
        let seq = node.seq;
        let kind = std::mem::replace(&mut node.kind, tombstone());
        node.next_free = self.free_head;
        self.free_head = root;
        Some(Event::new(time, kind, seq))
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&i| self.nodes[i as usize].time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the paper's "events/second" metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Slab capacity (live + free nodes) — the pool's high-water mark.
    pub fn pool_size(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        self.nodes[a as usize].key() < self.nodes[b as usize].key()
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < len && self.less(self.heap[right], self.heap[left]) {
                child = right;
            }
            if self.less(self.heap[child], self.heap[pos]) {
                self.heap.swap(pos, child);
                pos = child;
            } else {
                break;
            }
        }
    }

    /// Live heap indices sorted into pop order. Keys are unique (`seq` is a
    /// strictly increasing tiebreak), so this is exactly the order a full
    /// drain would produce — without mutating or cloning anything.
    fn sorted_live(&self) -> Vec<u32> {
        let mut live = self.heap.clone();
        live.sort_unstable_by_key(|&i| self.nodes[i as usize].key());
        live
    }
}

/// The future event list.
///
/// A thin dispatcher over the two interchangeable implementations:
/// [`PooledEventQueue`] (default, allocation-recycling) and
/// [`HeapEventQueue`] (reference). Both produce bit-identical pop orders and
/// snapshot bytes; the enum exists so equivalence tests and the perf bench
/// can run the same simulation against either engine.
pub enum EventQueue {
    Pooled(PooledEventQueue),
    Heap(HeapEventQueue),
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::Pooled(PooledEventQueue::new())
    }
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// The reference `BinaryHeap` implementation, for equivalence tests and
    /// honest before/after benchmarking.
    pub fn new_reference() -> EventQueue {
        EventQueue::Heap(HeapEventQueue::new())
    }

    /// True when backed by the pooled slab implementation.
    pub fn is_pooled(&self) -> bool {
        matches!(self, EventQueue::Pooled(_))
    }

    /// Schedule `kind` at absolute time `time`.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        match self {
            EventQueue::Pooled(q) => q.schedule(time, kind),
            EventQueue::Heap(q) => q.schedule(time, kind),
        }
    }

    /// Pop the next event in deterministic order.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Pooled(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        }
    }

    /// Timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            EventQueue::Pooled(q) => q.peek_time(),
            EventQueue::Heap(q) => q.peek_time(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::Pooled(q) => q.len(),
            EventQueue::Heap(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            EventQueue::Pooled(q) => q.is_empty(),
            EventQueue::Heap(q) => q.is_empty(),
        }
    }

    /// Total events ever scheduled (the paper's "events/second" metric).
    pub fn total_scheduled(&self) -> u64 {
        match self {
            EventQueue::Pooled(q) => q.total_scheduled(),
            EventQueue::Heap(q) => q.total_scheduled(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------------

use crate::snapshot::{self, SnapReader, SnapWriter, SnapshotError};

impl EventKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            EventKind::TxDone { link, dir } => {
                w.put_u8(0);
                w.put_u32(link.0);
                w.put_u8(dir.index() as u8);
            }
            EventKind::Arrive { node, packet } => {
                w.put_u8(1);
                w.put_u32(node.0);
                snapshot::put_packet(w, packet);
            }
            EventKind::Timer { host, flow, token } => {
                w.put_u8(2);
                w.put_u32(host.0);
                w.put_u64(flow.0);
                w.put_u64(*token);
            }
            EventKind::FlowArrival { host } => {
                w.put_u8(3);
                w.put_u32(host.0);
            }
            EventKind::FeederWake { cluster } => {
                w.put_u8(4);
                w.put_u32(*cluster);
            }
            EventKind::Fault { index } => {
                w.put_u8(5);
                w.put_u32(*index);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<EventKind, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => EventKind::TxDone {
                link: LinkId(r.get_u32()?),
                dir: match r.get_u8()? {
                    0 => Dir::Up,
                    1 => Dir::Down,
                    b => return Err(SnapshotError::Corrupt(format!("bad Dir {b}"))),
                },
            },
            1 => EventKind::Arrive {
                node: NodeId(r.get_u32()?),
                packet: snapshot::get_packet(r)?,
            },
            2 => EventKind::Timer {
                host: NodeId(r.get_u32()?),
                flow: FlowId(r.get_u64()?),
                token: r.get_u64()?,
            },
            3 => EventKind::FlowArrival {
                host: NodeId(r.get_u32()?),
            },
            4 => EventKind::FeederWake {
                cluster: r.get_u32()?,
            },
            5 => EventKind::Fault {
                index: r.get_u32()?,
            },
            b => return Err(SnapshotError::Corrupt(format!("bad EventKind {b}"))),
        })
    }
}

impl HeapEventQueue {
    /// Serialize the full future event list plus scheduling counters.
    ///
    /// Events are written in deterministic pop order (by draining a clone of
    /// the heap), and each event keeps its original insertion `seq`, so the
    /// restored queue reproduces the exact total order — including
    /// last-resort `seq` tiebreaks — of the uninterrupted run.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.heap.len() as u64);
        let mut drain = self.heap.clone();
        while let Some(e) = drain.pop() {
            w.put_u64(e.time.0);
            w.put_u64(e.seq);
            e.kind.save(w);
        }
        w.put_u64(self.seq);
        w.put_u64(self.scheduled);
    }

    /// Rebuild the future event list from [`EventQueue::save_state`] bytes.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(17)?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time = SimTime(r.get_u64()?);
            let seq = r.get_u64()?;
            let kind = EventKind::load(r)?;
            heap.push(Event::new(time, kind, seq));
        }
        self.heap = heap;
        self.seq = r.get_u64()?;
        self.scheduled = r.get_u64()?;
        Ok(())
    }
}

impl PooledEventQueue {
    /// Serialize the full future event list plus scheduling counters.
    ///
    /// Byte-identical to [`HeapEventQueue::save_state`]: keys are unique, so
    /// sorting the live slab indices reproduces the exact pop order the
    /// reference implementation gets by draining a heap clone — but here
    /// events are serialized *by reference* (no packet-deep clone of the
    /// future event list just to take a checkpoint).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.heap.len() as u64);
        for &idx in &self.sorted_live() {
            let node = &self.nodes[idx as usize];
            w.put_u64(node.time.0);
            w.put_u64(node.seq);
            node.kind.save(w);
        }
        w.put_u64(self.seq);
        w.put_u64(self.scheduled);
    }

    /// Rebuild the future event list from [`EventQueue::save_state`] bytes.
    ///
    /// Events arrive in pop order (already heap-ordered for an index heap
    /// filled left to right), and each keeps its original `seq` so restored
    /// tiebreaks match the uninterrupted run bit for bit.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(17)?;
        self.nodes.clear();
        self.heap.clear();
        self.free_head = NIL;
        self.nodes.reserve(n);
        self.heap.reserve(n);
        for _ in 0..n {
            let time = SimTime(r.get_u64()?);
            let seq = r.get_u64()?;
            let kind = EventKind::load(r)?;
            self.insert(time, kind, seq);
        }
        self.seq = r.get_u64()?;
        self.scheduled = r.get_u64()?;
        Ok(())
    }
}

impl EventKind {
    /// Write the event payload through the snapshot codec. The window
    /// digest uses this so per-event digests cover exactly the bytes a
    /// checkpoint would persist for the event.
    pub fn encode_for_digest(&self, w: &mut SnapWriter) {
        self.save(w);
    }
}

impl EventQueue {
    /// Visit every live (not yet popped) event, in arbitrary order.
    ///
    /// This is the window-digest iteration hook: callers combine per-event
    /// digests commutatively, so visit order is irrelevant, and the `seq`
    /// insertion tiebreak is deliberately not exposed — it depends on
    /// scheduling history and differs across partition counts, while the
    /// `(time, payload)` pair visible here does not.
    pub fn for_each_live(&self, mut f: impl FnMut(SimTime, &EventKind)) {
        match self {
            EventQueue::Pooled(q) => {
                for &i in &q.heap {
                    let n = &q.nodes[i as usize];
                    f(n.time, &n.kind);
                }
            }
            EventQueue::Heap(q) => {
                for e in q.heap.iter() {
                    f(e.time, &e.kind);
                }
            }
        }
    }

    /// Serialize the full future event list plus scheduling counters. Both
    /// backing implementations write the same bytes for the same logical
    /// queue contents, so snapshots are portable across them.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            EventQueue::Pooled(q) => q.save_state(w),
            EventQueue::Heap(q) => q.save_state(w),
        }
    }

    /// Rebuild the future event list from [`EventQueue::save_state`] bytes,
    /// into whichever implementation this queue currently is.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        match self {
            EventQueue::Pooled(q) => q.load_state(r),
            EventQueue::Heap(q) => q.load_state(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), EventKind::FlowArrival { host: NodeId(1) });
        q.schedule(t(10), EventKind::FlowArrival { host: NodeId(2) });
        q.schedule(t(20), EventKind::FlowArrival { host: NodeId(3) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn class_order_at_same_time() {
        let mut q = EventQueue::new();
        let time = t(5);
        q.schedule(time, EventKind::FlowArrival { host: NodeId(1) });
        q.schedule(
            time,
            EventKind::Timer {
                host: NodeId(1),
                flow: FlowId(1),
                token: 0,
            },
        );
        q.schedule(
            time,
            EventKind::TxDone {
                link: LinkId(0),
                dir: Dir::Up,
            },
        );
        q.schedule(time, EventKind::Fault { index: 0 });
        let classes: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Fault { .. } => 0,
                EventKind::TxDone { .. } => 1,
                EventKind::Arrive { .. } => 2,
                EventKind::Timer { .. } => 3,
                EventKind::FlowArrival { .. } => 4,
                EventKind::FeederWake { .. } => 5,
            })
            .collect();
        assert_eq!(classes, vec![0, 1, 3, 4]);
    }

    #[test]
    fn tag_breaks_ties_independent_of_insertion_order() {
        // Two FlowArrival events at the same instant must pop in host order
        // regardless of scheduling order.
        for flip in [false, true] {
            let mut q = EventQueue::new();
            let (a, b) = if flip {
                (NodeId(9), NodeId(3))
            } else {
                (NodeId(3), NodeId(9))
            };
            q.schedule(t(7), EventKind::FlowArrival { host: a });
            q.schedule(t(7), EventKind::FlowArrival { host: b });
            let hosts: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::FlowArrival { host } => host.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(hosts, vec![3, 9]);
        }
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(i), EventKind::FlowArrival { host: NodeId(0) });
        }
        assert_eq!(q.total_scheduled(), 10);
        assert_eq!(q.len(), 10);
        q.pop();
        assert_eq!(q.total_scheduled(), 10);
        assert_eq!(q.len(), 9);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::ZERO + SimDuration::from_millis(2),
            EventKind::FeederWake { cluster: 0 },
        );
        q.schedule(
            SimTime::ZERO + SimDuration::from_millis(1),
            EventKind::FeederWake { cluster: 1 },
        );
        assert_eq!(q.peek_time(), Some(t(1_000_000)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, t(1_000_000));
    }

    /// A deterministic mixed-kind workload for cross-implementation checks.
    fn mixed_kind(i: u64) -> EventKind {
        match i % 6 {
            0 => EventKind::TxDone {
                link: LinkId((i / 6) as u32 % 16),
                dir: if i.is_multiple_of(2) { Dir::Up } else { Dir::Down },
            },
            1 => EventKind::Arrive {
                node: NodeId((i % 32) as u32),
                packet: Packet::data(i, FlowId(i % 8), NodeId(0), NodeId(1), i % 7, 1000, true, t(i)),
            },
            2 => EventKind::Timer {
                host: NodeId((i % 16) as u32),
                flow: FlowId(i % 8),
                token: i,
            },
            3 => EventKind::FlowArrival {
                host: NodeId((i % 16) as u32),
            },
            4 => EventKind::FeederWake {
                cluster: (i % 4) as u32,
            },
            _ => EventKind::Fault {
                index: (i % 10) as u32,
            },
        }
    }

    /// Compact fingerprint of a popped event, covering every payload field
    /// that participates in ordering or dispatch.
    fn fingerprint(e: &Event) -> (u64, u8, u64) {
        (e.time.0, e.kind.class(), e.kind.tag())
    }

    #[test]
    fn pooled_matches_heap_reference_order() {
        let mut pooled = EventQueue::new();
        let mut heap = EventQueue::new_reference();
        assert!(pooled.is_pooled());
        assert!(!heap.is_pooled());
        // Deliberately collision-heavy times to exercise class/tag/seq
        // tiebreaks, with interleaved pops mid-stream.
        let mut step = 0u64;
        for i in 0..500u64 {
            let time = t((i * 37) % 41);
            pooled.schedule(time, mixed_kind(i));
            heap.schedule(time, mixed_kind(i));
            if i % 7 == 3 {
                step += 1;
                let a = pooled.pop().map(|e| fingerprint(&e));
                let b = heap.pop().map(|e| fingerprint(&e));
                assert_eq!(a, b, "divergence at interleaved pop {step}");
            }
        }
        loop {
            let a = pooled.pop().map(|e| fingerprint(&e));
            let b = heap.pop().map(|e| fingerprint(&e));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(pooled.total_scheduled(), heap.total_scheduled());
    }

    #[test]
    fn pooled_and_heap_snapshots_are_byte_identical() {
        let mut pooled = EventQueue::new();
        let mut heap = EventQueue::new_reference();
        for i in 0..200u64 {
            let time = t((i * 13) % 29);
            pooled.schedule(time, mixed_kind(i));
            heap.schedule(time, mixed_kind(i));
            if i % 5 == 0 {
                pooled.pop();
                heap.pop();
            }
        }
        let mut wp = SnapWriter::new();
        let mut wh = SnapWriter::new();
        pooled.save_state(&mut wp);
        heap.save_state(&mut wh);
        let (bp, bh) = (wp.into_bytes(), wh.into_bytes());
        assert_eq!(bp, bh, "snapshot encodings diverge");

        // Cross-restore: pooled bytes into a heap queue and vice versa, then
        // both must re-save to the same bytes and pop identically.
        let mut restored_heap = EventQueue::new_reference();
        restored_heap
            .load_state(&mut SnapReader::new(&bp))
            .expect("heap restores pooled bytes");
        let mut restored_pooled = EventQueue::new();
        restored_pooled
            .load_state(&mut SnapReader::new(&bh))
            .expect("pooled restores heap bytes");
        loop {
            let a = restored_pooled.pop().map(|e| fingerprint(&e));
            let b = restored_heap.pop().map(|e| fingerprint(&e));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pool_recycles_nodes_at_steady_state() {
        let mut q = PooledEventQueue::new();
        // Fill to a high-water mark of 64 in-flight events...
        for i in 0..64u64 {
            q.schedule(t(i), mixed_kind(i));
        }
        let high_water = q.pool_size();
        assert_eq!(high_water, 64);
        // ...then hold-and-schedule for thousands of events: the slab must
        // not grow past the high-water mark (every pop frees a node the next
        // schedule reuses).
        for i in 64..10_000u64 {
            q.pop().unwrap();
            q.schedule(t(i), mixed_kind(i));
            assert!(q.len() == 64);
        }
        assert_eq!(q.pool_size(), high_water, "freelist failed to recycle");
    }

    /// Guard for the hand-maintained per-kind tables (`COUNT`, the
    /// `name_of` NAMES array, `class()` ranks). The match in `ordinal` is
    /// exhaustive, so adding an `EventKind` variant fails to *compile* until
    /// this test is updated — and the updated sample array's length is tied
    /// to `COUNT`, so forgetting to bump the counter-array size fails here
    /// rather than silently misindexing `dcn-obs` counters.
    #[test]
    fn kind_tables_are_exhaustive_and_consistent() {
        fn ordinal(k: &EventKind) -> usize {
            // EXHAUSTIVE on purpose — no `_` arm. New variant? Update this
            // match, the `samples` array below, `EventKind::COUNT`,
            // `class()`, and the NAMES table together.
            match k {
                EventKind::Fault { .. } => 0,
                EventKind::TxDone { .. } => 1,
                EventKind::Arrive { .. } => 2,
                EventKind::Timer { .. } => 3,
                EventKind::FlowArrival { .. } => 4,
                EventKind::FeederWake { .. } => 5,
            }
        }
        let samples: [EventKind; EventKind::COUNT] = [
            EventKind::Fault { index: 0 },
            EventKind::TxDone {
                link: LinkId(0),
                dir: Dir::Up,
            },
            EventKind::Arrive {
                node: NodeId(0),
                packet: Packet::data(0, FlowId(0), NodeId(0), NodeId(1), 0, 1000, true, t(0)),
            },
            EventKind::Timer {
                host: NodeId(0),
                flow: FlowId(0),
                token: 0,
            },
            EventKind::FlowArrival { host: NodeId(0) },
            EventKind::FeederWake { cluster: 0 },
        ];
        let mut seen = [false; EventKind::COUNT];
        let mut names = std::collections::HashSet::new();
        for k in &samples {
            // class() is the dense per-kind index and must agree with the
            // canonical ordinal above.
            assert_eq!(k.index(), ordinal(k), "class rank disagrees with ordinal");
            assert!(k.index() < EventKind::COUNT, "index out of counter range");
            assert!(!seen[k.index()], "duplicate class rank {}", k.index());
            seen[k.index()] = true;
            assert!(
                names.insert(EventKind::name_of(k.index())),
                "duplicate name {}",
                EventKind::name_of(k.index())
            );
        }
        assert!(seen.iter().all(|&s| s), "class ranks are not dense");
    }
}
