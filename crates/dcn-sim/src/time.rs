//! Virtual time.
//!
//! Simulated time is a monotone `u64` nanosecond counter. Using a fixed-point
//! integer representation (rather than `f64` seconds) keeps event ordering
//! exact and makes sequential and parallel executions bit-identical.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" horizon sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds of simulated time.
    pub fn from_secs_f64(s: f64) -> SimTime {
        debug_assert!(s >= 0.0, "simulated time cannot be negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// This instant expressed in (floating point) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from seconds.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0, "durations cannot be negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Duration in (floating point) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The wire time of `bytes` at `bits_per_sec`, rounded up to a whole
    /// nanosecond so back-to-back packets never overlap.
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> SimDuration {
        debug_assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / bps) without overflow for realistic values.
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Scalar multiply (used for timer backoff).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.0, 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_secs_f64(1.5));
        let d = SimDuration::from_millis(3) - SimDuration::from_millis(1);
        assert_eq!(d, SimDuration::from_millis(2));
    }

    #[test]
    fn duration_subtraction_saturates() {
        let d = SimDuration::from_millis(1) - SimDuration::from_millis(5);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs_f64(1.0));
    }

    #[test]
    fn serialization_time_100mbps() {
        // 1500 B at 100 Mbps = 120 us.
        let d = SimDuration::serialization(1500, 100_000_000);
        assert_eq!(d.as_nanos(), 120_000);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s rounds up.
        let d = SimDuration::serialization(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn time_add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_millis(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn mul_f64_backoff() {
        let d = SimDuration::from_millis(200).mul_f64(2.0);
        assert_eq!(d, SimDuration::from_millis(400));
    }
}
