//! Small summary-statistics helpers used throughout the workspace.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) of **sorted** data, by linear
/// interpolation between closest ranks. 0.0 for empty data.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires sorted input"
    );
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Sorts a copy and takes the percentile.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&v, p)
}

/// A compact summary of a sample set, used in experiment reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary {
            n: v.len(),
            mean: mean(&v),
            p50: percentile_sorted(&v, 50.0),
            p90: percentile_sorted(&v, 90.0),
            p99: percentile_sorted(&v, 99.0),
            max: *v.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(std_err(&[]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 90.0), 46.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [50.0, 10.0, 30.0, 20.0, 40.0];
        assert_eq!(percentile(&xs, 50.0), 30.0);
    }

    #[test]
    fn summary_fields() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 50.5);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
    }
}
