//! The transport abstraction hosts run their flows behind.
//!
//! `dcn-sim` knows nothing about specific protocols; the `dcn-transport`
//! crate provides TCP New Reno, DCTCP, TCP Vegas, TCP Westwood, and Homa
//! behind the [`Transport`] trait defined here. The engine drives a
//! transport instance with three callbacks (`on_start`, `on_packet`,
//! `on_timer`); the transport responds by filling an [`Actions`] out-param
//! with packets to emit, timers to arm, and bookkeeping for the
//! instrumentation layer.
//!
//! This design mirrors MimicNet's "intra-host isolation" restriction
//! (§4.2): each connection's state machine is fully self-contained — no
//! shared CPU model, no cross-connection cooperation — which is what allows
//! the framework to delete Mimic-Mimic connections wholesale.

use crate::packet::{FlowId, Packet};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Immutable description of one flow.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// When the application opened the flow.
    pub start: SimTime,
}

/// Deterministic per-host packet id allocator.
///
/// Ids embed the host so allocation is independent of global event
/// interleaving — a prerequisite for sequential/parallel bit-equality.
#[derive(Clone, Debug)]
pub struct PacketIdAlloc {
    host: u32,
    counter: u64,
}

impl PacketIdAlloc {
    pub fn new(host: NodeId) -> PacketIdAlloc {
        PacketIdAlloc {
            host: host.0,
            counter: 0,
        }
    }

    /// Allocate the next globally unique packet id.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.counter += 1;
        ((self.host as u64) << 40) | self.counter
    }

    /// Ids allocated so far, for checkpointing.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Restore the allocation counter from a checkpoint.
    pub fn set_counter(&mut self, counter: u64) {
        self.counter = counter;
    }
}

/// Context handed to every transport callback.
pub struct TransportCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Packet id allocator of the host this transport runs on.
    pub ids: &'a mut PacketIdAlloc,
}

/// Everything a transport wants the engine to do in response to an event.
#[derive(Default, Debug)]
pub struct Actions {
    /// Packets to transmit from this host, in order.
    pub sends: Vec<Packet>,
    /// Timers to arm: `(delay from now, token)`. Timers are not cancellable;
    /// transports must ignore stale firings (lazy cancellation).
    pub timers: Vec<(SimDuration, u64)>,
    /// Application bytes newly delivered in-order to the receiving app.
    pub delivered: u64,
    /// RTT samples measured from acknowledgments.
    pub rtt_samples: Vec<SimDuration>,
    /// The flow finished (sender: all bytes acknowledged).
    pub completed: bool,
}

impl Actions {
    pub fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.delivered = 0;
        self.rtt_samples.clear();
        self.completed = false;
    }
}

/// A per-flow transport endpoint state machine.
pub trait Transport {
    /// The flow was opened (sender side only).
    fn on_start(&mut self, ctx: &mut TransportCtx, out: &mut Actions);
    /// A packet for this flow arrived at this host.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions);
    /// A previously armed timer fired.
    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx, out: &mut Actions);

    /// Capture the endpoint's mutable state for a checkpoint (see
    /// [`crate::snapshot`]). The default refuses, so custom transports
    /// opt in explicitly; all in-tree transports implement both hooks.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported("this Transport implementation"))
    }

    /// Restore state captured by [`Transport::save_state`] into a freshly
    /// constructed endpoint for the same [`FlowSpec`].
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported("this Transport implementation"))
    }

    /// Re-initialize this endpoint for a brand-new flow so the engine can
    /// recycle the box instead of allocating a fresh one (flow churn is the
    /// engine's dominant allocation site — see
    /// `dcn-sim/tests/alloc_steady_state.rs`).
    ///
    /// Returning `true` is a contract: the endpoint must now be
    /// *behaviorally identical* to a factory-fresh endpoint for `spec` —
    /// same trajectory, same snapshot bytes. Buffers may keep their
    /// capacity (that is the point), but every logical field must be back
    /// at its constructed value. The default opts out (`false`), which
    /// permanently disables pooling for that role; all in-tree transports
    /// opt in.
    fn reset(&mut self, spec: &FlowSpec) -> bool {
        let _ = spec;
        false
    }
}

/// Merge `[start, end)` into a sorted, disjoint `[s, e)` range set — in
/// place. Touching or overlapping neighbours coalesce, so the common
/// in-order case is a branch plus an O(1) extension of the first range and
/// the per-packet receive path never allocates once the vec has capacity.
/// Shared by every receiver that tracks out-of-order data (the testing
/// [`testing::CumAckReceiver`] and the TCP/Homa receivers in
/// `dcn-transport`).
pub fn merge_range(ranges: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    let i = ranges.partition_point(|&(s, _)| s <= start);
    if i > 0 && ranges[i - 1].1 >= start {
        // Extend the predecessor, folding in any ranges the extension now
        // touches.
        ranges[i - 1].1 = ranges[i - 1].1.max(end);
        let reach = ranges[i - 1].1;
        let j = i + ranges[i..].partition_point(|&(s, _)| s <= reach);
        if j > i {
            ranges[i - 1].1 = reach.max(ranges[j - 1].1);
            ranges.drain(i..j);
        }
        return;
    }
    // No predecessor overlap: absorb any following ranges that
    // `[start, end)` touches.
    let j = i + ranges[i..].partition_point(|&(s, _)| s <= end);
    if j == i {
        ranges.insert(i, (start, end));
    } else {
        let e = end.max(ranges[j - 1].1);
        ranges[i] = (start, e);
        ranges.drain(i + 1..j);
    }
}

/// Creates sender/receiver endpoints for new flows.
pub trait TransportFactory {
    /// Protocol name for reports ("tcp-newreno", "dctcp", ...).
    fn name(&self) -> &'static str;
    /// Sender-side endpoint.
    fn sender(&self, flow: &FlowSpec) -> Box<dyn Transport>;
    /// Receiver-side endpoint.
    fn receiver(&self, flow: &FlowSpec) -> Box<dyn Transport>;
}

/// A deliberately simple fixed-window transport used by `dcn-sim`'s own
/// tests and benches (real protocols live in `dcn-transport`).
///
/// The sender keeps `window` segments outstanding, retransmitting on a fixed
/// timeout; the receiver acks cumulatively. It is *not* congestion
/// controlled.
pub mod testing {
    use super::*;
    use crate::packet::{PacketKind, MSS_BYTES};

    /// Factory for [`FixedWindowSender`]/[`CumAckReceiver`] pairs.
    pub struct FixedWindowFactory {
        /// Segments kept in flight.
        pub window: u32,
        /// Retransmission timeout.
        pub rto: SimDuration,
    }

    impl Default for FixedWindowFactory {
        fn default() -> Self {
            FixedWindowFactory {
                window: 8,
                rto: SimDuration::from_millis(50),
            }
        }
    }

    impl TransportFactory for FixedWindowFactory {
        fn name(&self) -> &'static str {
            "fixed-window"
        }
        fn sender(&self, flow: &FlowSpec) -> Box<dyn Transport> {
            Box::new(FixedWindowSender {
                flow: flow.clone(),
                window: self.window,
                rto: self.rto,
                next_seq: 0,
                acked: 0,
                timer_gen: 0,
            })
        }
        fn receiver(&self, flow: &FlowSpec) -> Box<dyn Transport> {
            Box::new(CumAckReceiver {
                flow: flow.clone(),
                received: Vec::new(),
                delivered: 0,
            })
        }
    }

    /// Fixed-window sender.
    pub struct FixedWindowSender {
        flow: FlowSpec,
        window: u32,
        rto: SimDuration,
        next_seq: u64,
        acked: u64,
        timer_gen: u64,
    }

    impl FixedWindowSender {
        fn fill_window(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
            while self.next_seq < self.flow.size_bytes
                && self.next_seq - self.acked < (self.window as u64) * MSS_BYTES as u64
            {
                let payload =
                    MSS_BYTES.min((self.flow.size_bytes - self.next_seq) as u32);
                let mut p = Packet::data(
                    ctx.ids.next(),
                    self.flow.id,
                    self.flow.src,
                    self.flow.dst,
                    self.next_seq,
                    payload,
                    false,
                    ctx.now,
                );
                p.flow_size = self.flow.size_bytes;
                if self.next_seq + payload as u64 >= self.flow.size_bytes {
                    p.flags.fin = true;
                }
                out.sends.push(p);
                self.next_seq += payload as u64;
            }
        }

        fn arm_timer(&mut self, out: &mut Actions) {
            self.timer_gen += 1;
            out.timers.push((self.rto, self.timer_gen));
        }
    }

    impl Transport for FixedWindowSender {
        fn on_start(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
            self.fill_window(ctx, out);
            self.arm_timer(out);
        }

        fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
            if pkt.kind != PacketKind::Ack {
                return;
            }
            if pkt.seq > self.acked {
                self.acked = pkt.seq;
                out.rtt_samples.push(ctx.now.since(pkt.echo));
            }
            if self.acked >= self.flow.size_bytes {
                out.completed = true;
                return;
            }
            self.fill_window(ctx, out);
            self.arm_timer(out);
        }

        fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx, out: &mut Actions) {
            if token != self.timer_gen || self.acked >= self.flow.size_bytes {
                return; // stale
            }
            // Go-back-N: rewind and resend the window.
            self.next_seq = self.acked;
            self.fill_window(ctx, out);
            self.arm_timer(out);
        }

        fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
            w.put_u64(self.next_seq);
            w.put_u64(self.acked);
            w.put_u64(self.timer_gen);
            Ok(())
        }

        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
            self.next_seq = r.get_u64()?;
            self.acked = r.get_u64()?;
            self.timer_gen = r.get_u64()?;
            Ok(())
        }

        fn reset(&mut self, spec: &FlowSpec) -> bool {
            // `window`/`rto` are factory parameters; within one simulation
            // every endpoint comes from the same factory, so they carry over.
            self.flow = spec.clone();
            self.next_seq = 0;
            self.acked = 0;
            self.timer_gen = 0;
            true
        }
    }

    /// Cumulative-ack receiver shared by the testing transport.
    pub struct CumAckReceiver {
        flow: FlowSpec,
        received: Vec<(u64, u64)>, // sorted disjoint [start, end) ranges
        delivered: u64,
    }

    impl CumAckReceiver {
        /// Merge `[start, end)` into the sorted disjoint range set, in
        /// place — see [`super::merge_range`]; the engine's per-packet hot
        /// path must not allocate (see
        /// `dcn-sim/tests/alloc_steady_state.rs`).
        fn insert(&mut self, start: u64, end: u64) {
            super::merge_range(&mut self.received, start, end);
        }

        fn cum_ack(&self) -> u64 {
            match self.received.first() {
                Some(&(0, e)) => e,
                _ => 0,
            }
        }
    }

    impl Transport for CumAckReceiver {
        fn on_start(&mut self, _ctx: &mut TransportCtx, _out: &mut Actions) {}

        fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
            if pkt.kind != PacketKind::Data {
                return;
            }
            self.insert(pkt.seq, pkt.seq + pkt.payload as u64);
            let cum = self.cum_ack();
            if cum > self.delivered {
                out.delivered = cum - self.delivered;
                self.delivered = cum;
            }
            out.sends.push(Packet::ack(
                ctx.ids.next(),
                self.flow.id,
                self.flow.dst,
                self.flow.src,
                cum,
                false,
                pkt.sent_at,
                ctx.now,
            ));
            if self.delivered >= self.flow.size_bytes {
                out.completed = true;
            }
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut TransportCtx, _out: &mut Actions) {}

        fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
            w.put_u64(self.received.len() as u64);
            for &(s, e) in &self.received {
                w.put_u64(s);
                w.put_u64(e);
            }
            w.put_u64(self.delivered);
            Ok(())
        }

        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
            let n = r.get_count(16)?;
            self.received = (0..n)
                .map(|_| Ok((r.get_u64()?, r.get_u64()?)))
                .collect::<Result<_, SnapshotError>>()?;
            self.delivered = r.get_u64()?;
            Ok(())
        }

        fn reset(&mut self, spec: &FlowSpec) -> bool {
            self.flow = spec.clone();
            self.received.clear(); // keeps capacity — that's the point
            self.delivered = 0;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use super::*;
    use crate::packet::{PacketKind, MSS_BYTES};

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn packet_ids_are_unique_and_host_scoped() {
        let mut a = PacketIdAlloc::new(NodeId(3));
        let mut b = PacketIdAlloc::new(NodeId(4));
        let id_a = a.next();
        let id_b = b.next();
        assert_ne!(id_a, id_b);
        assert_eq!(id_a >> 40, 3);
        assert_eq!(id_b >> 40, 4);
        assert_ne!(a.next(), id_a);
    }

    #[test]
    fn fixed_window_sender_fills_window() {
        let f = FixedWindowFactory {
            window: 4,
            rto: SimDuration::from_millis(10),
        };
        let mut s = f.sender(&spec(100 * MSS_BYTES as u64));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut ctx = TransportCtx {
            now: SimTime::ZERO,
            ids: &mut ids,
        };
        let mut out = Actions::default();
        s.on_start(&mut ctx, &mut out);
        assert_eq!(out.sends.len(), 4);
        assert_eq!(out.timers.len(), 1);
        assert!(out.sends.iter().all(|p| p.kind == PacketKind::Data));
    }

    #[test]
    fn sender_completes_after_full_ack() {
        let f = FixedWindowFactory::default();
        let size = 2 * MSS_BYTES as u64;
        let mut s = f.sender(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        {
            let mut ctx = TransportCtx {
                now: SimTime::ZERO,
                ids: &mut ids,
            };
            s.on_start(&mut ctx, &mut out);
        }
        let ack = Packet::ack(
            99,
            FlowId(1),
            NodeId(1),
            NodeId(0),
            size,
            false,
            SimTime::ZERO,
            SimTime::from_secs_f64(0.001),
        );
        let mut ctx = TransportCtx {
            now: SimTime::from_secs_f64(0.001),
            ids: &mut ids,
        };
        out.clear();
        s.on_packet(&ack, &mut ctx, &mut out);
        assert!(out.completed);
        assert_eq!(out.rtt_samples.len(), 1);
    }

    #[test]
    fn receiver_acks_cumulatively_and_reorders() {
        let f = FixedWindowFactory::default();
        let mut r = f.receiver(&spec(3 * MSS_BYTES as u64));
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let mk = |seq: u64| {
            Packet::data(
                seq + 1,
                FlowId(1),
                NodeId(0),
                NodeId(1),
                seq,
                MSS_BYTES,
                false,
                SimTime::ZERO,
            )
        };
        let mut out = Actions::default();
        // Out of order: segment 2 then 0 then 1.
        let mut ctx = TransportCtx {
            now: SimTime::ZERO,
            ids: &mut ids,
        };
        r.on_packet(&mk(2 * MSS_BYTES as u64), &mut ctx, &mut out);
        assert_eq!(out.sends[0].seq, 0); // nothing in order yet
        assert_eq!(out.delivered, 0);
        out.clear();
        r.on_packet(&mk(0), &mut ctx, &mut out);
        assert_eq!(out.sends[0].seq, MSS_BYTES as u64);
        assert_eq!(out.delivered, MSS_BYTES as u64);
        out.clear();
        r.on_packet(&mk(MSS_BYTES as u64), &mut ctx, &mut out);
        // Hole filled: cumulative ack jumps to 3 MSS.
        assert_eq!(out.sends[0].seq, 3 * MSS_BYTES as u64);
        assert_eq!(out.delivered, 2 * MSS_BYTES as u64);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let f = FixedWindowFactory::default();
        let mut s = f.sender(&spec(MSS_BYTES as u64));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        let mut ctx = TransportCtx {
            now: SimTime::ZERO,
            ids: &mut ids,
        };
        s.on_start(&mut ctx, &mut out);
        out.clear();
        // Token 0 was never armed (first armed token is 1).
        s.on_timer(0, &mut ctx, &mut out);
        assert!(out.sends.is_empty());
    }

    #[test]
    fn timer_retransmits_window() {
        let f = FixedWindowFactory {
            window: 2,
            rto: SimDuration::from_millis(10),
        };
        let mut s = f.sender(&spec(4 * MSS_BYTES as u64));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        let mut ctx = TransportCtx {
            now: SimTime::ZERO,
            ids: &mut ids,
        };
        s.on_start(&mut ctx, &mut out);
        let first_ids: Vec<u64> = out.sends.iter().map(|p| p.id).collect();
        out.clear();
        s.on_timer(1, &mut ctx, &mut out);
        assert_eq!(out.sends.len(), 2);
        // Same sequence numbers, fresh packet ids.
        assert_eq!(out.sends[0].seq, 0);
        assert!(out.sends.iter().all(|p| !first_ids.contains(&p.id)));
    }
}
