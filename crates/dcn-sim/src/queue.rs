//! Switch output-port queues.
//!
//! The paper's experiments use three queue behaviours, all implemented here
//! behind one [`PortQueue`] type configured by [`QueueConfig`]:
//!
//! * **DropTail** — the baseline: fixed byte capacity, tail drop.
//! * **ECN marking** (DCTCP) — mark CE on ECN-capable packets when the
//!   instantaneous queue occupancy exceeds the marking threshold `K`
//!   (in packets), as in the DCTCP paper and the paper's §9.4.1 sweep.
//! * **Strict priorities** (Homa) — multiple bands; dequeue always serves
//!   the highest-priority non-empty band.
//!
//! Queue state is the principal thing MimicNet's internal models must learn
//! to approximate, so drop/mark counters are exposed for instrumentation.

use crate::packet::{Ecn, Packet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for one output port's queue.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Total capacity across all bands, in bytes.
    pub capacity_bytes: u64,
    /// If set, CE-mark ECN-capable packets when the queue already holds at
    /// least this many packets on enqueue (DCTCP's `K`).
    pub ecn_mark_threshold_pkts: Option<u32>,
    /// Number of strict-priority bands (1 = FIFO).
    pub bands: u8,
}

impl QueueConfig {
    /// Plain DropTail FIFO.
    pub fn drop_tail(capacity_bytes: u64) -> QueueConfig {
        QueueConfig {
            capacity_bytes,
            ecn_mark_threshold_pkts: None,
            bands: 1,
        }
    }

    /// DropTail FIFO with DCTCP-style ECN marking at threshold `k` packets.
    pub fn ecn(capacity_bytes: u64, k: u32) -> QueueConfig {
        QueueConfig {
            capacity_bytes,
            ecn_mark_threshold_pkts: Some(k),
            bands: 1,
        }
    }

    /// Strict-priority queue with `bands` levels (Homa).
    pub fn priority(capacity_bytes: u64, bands: u8) -> QueueConfig {
        assert!(bands >= 1);
        QueueConfig {
            capacity_bytes,
            ecn_mark_threshold_pkts: None,
            bands,
        }
    }
}

/// What happened to a packet offered to a queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueOutcome {
    /// Accepted; `marked` is true if the queue set the CE codepoint.
    Enqueued { marked: bool },
    /// Rejected: queue full.
    Dropped,
}

/// An output-port queue (one per link direction at every switch/host).
#[derive(Clone, Debug)]
pub struct PortQueue {
    cfg: QueueConfig,
    bands: Vec<VecDeque<Packet>>,
    bytes: u64,
    pkts: u32,
    /// Cumulative count of packets dropped by this queue.
    pub dropped: u64,
    /// Cumulative count of packets CE-marked by this queue.
    pub marked: u64,
    /// Cumulative count of packets accepted by this queue.
    pub enqueued: u64,
    /// High-watermark of byte occupancy ever reached.
    pub peak_bytes: u64,
}

impl PortQueue {
    pub fn new(cfg: QueueConfig) -> PortQueue {
        PortQueue {
            bands: (0..cfg.bands.max(1)).map(|_| VecDeque::new()).collect(),
            cfg,
            bytes: 0,
            pkts: 0,
            dropped: 0,
            marked: 0,
            enqueued: 0,
            peak_bytes: 0,
        }
    }

    /// Offer a packet to the queue. On acceptance the packet is stored (and
    /// possibly CE-marked in place); on rejection it is discarded.
    pub fn enqueue(&mut self, mut pkt: Packet) -> EnqueueOutcome {
        let size = pkt.wire_bytes() as u64;
        if self.bytes + size > self.cfg.capacity_bytes {
            self.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        let mut marked = false;
        if let Some(k) = self.cfg.ecn_mark_threshold_pkts {
            // DCTCP marks based on instantaneous occupancy at enqueue time.
            if self.pkts >= k && pkt.ecn.is_capable() {
                pkt.ecn = Ecn::Ce;
                marked = true;
                self.marked += 1;
            }
        }
        let band = (pkt.prio as usize).min(self.bands.len() - 1);
        self.bytes += size;
        self.pkts += 1;
        self.enqueued += 1;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.bands[band].push_back(pkt);
        EnqueueOutcome::Enqueued { marked }
    }

    /// Take the next packet to transmit: strict priority across bands,
    /// FIFO within a band.
    pub fn dequeue(&mut self) -> Option<Packet> {
        for band in &mut self.bands {
            if let Some(p) = band.pop_front() {
                self.bytes -= p.wire_bytes() as u64;
                self.pkts -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Packets currently queued.
    pub fn len_pkts(&self) -> u32 {
        self.pkts
    }

    /// Bytes currently queued.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    pub fn is_empty(&self) -> bool {
        self.pkts == 0
    }
}

use crate::snapshot::{self, SnapReader, SnapWriter, SnapshotError};

impl PortQueue {
    /// Serialize queued packets (per band, FIFO order) and counters. The
    /// queue's configuration is not stored — restore rebuilds it from the
    /// run config.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.bands.len() as u64);
        for band in &self.bands {
            w.put_u64(band.len() as u64);
            for p in band {
                snapshot::put_packet(w, p);
            }
        }
        w.put_u64(self.dropped);
        w.put_u64(self.marked);
        w.put_u64(self.enqueued);
        w.put_u64(self.peak_bytes);
    }

    /// Restore queued packets and counters from [`PortQueue::save_state`]
    /// bytes. Byte/packet occupancy is recomputed from the packets.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let nbands = r.get_count(8)?;
        if nbands != self.bands.len() {
            return Err(SnapshotError::Corrupt(format!(
                "queue has {} bands, snapshot has {nbands}",
                self.bands.len()
            )));
        }
        self.bytes = 0;
        self.pkts = 0;
        for band in &mut self.bands {
            band.clear();
        }
        for b in 0..nbands {
            let n = r.get_count(1)?;
            for _ in 0..n {
                let p = snapshot::get_packet(r)?;
                self.bytes += p.wire_bytes() as u64;
                self.pkts += 1;
                self.bands[b].push_back(p);
            }
        }
        self.dropped = r.get_u64()?;
        self.marked = r.get_u64()?;
        self.enqueued = r.get_u64()?;
        self.peak_bytes = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, MSS_BYTES};
    use crate::time::SimTime;
    use crate::topology::NodeId;

    fn pkt(id: u64, payload: u32, prio: u8, ecn_capable: bool) -> Packet {
        let mut p = Packet::data(
            id,
            FlowId(1),
            NodeId(0),
            NodeId(1),
            0,
            payload,
            ecn_capable,
            SimTime::ZERO,
        );
        p.prio = prio;
        p
    }

    #[test]
    fn fifo_order() {
        let mut q = PortQueue::new(QueueConfig::drop_tail(1_000_000));
        for i in 0..5 {
            assert!(matches!(
                q.enqueue(pkt(i, 100, 0, false)),
                EnqueueOutcome::Enqueued { marked: false }
            ));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().id, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drop_tail_respects_capacity() {
        // Capacity fits exactly two 1500 B packets.
        let mut q = PortQueue::new(QueueConfig::drop_tail(3_000));
        assert!(matches!(
            q.enqueue(pkt(1, MSS_BYTES, 0, false)),
            EnqueueOutcome::Enqueued { .. }
        ));
        assert!(matches!(
            q.enqueue(pkt(2, MSS_BYTES, 0, false)),
            EnqueueOutcome::Enqueued { .. }
        ));
        assert_eq!(q.enqueue(pkt(3, MSS_BYTES, 0, false)), EnqueueOutcome::Dropped);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 3_000);
    }

    #[test]
    fn small_packet_fits_after_large_dropped() {
        let mut q = PortQueue::new(QueueConfig::drop_tail(3_040));
        q.enqueue(pkt(1, MSS_BYTES, 0, false));
        q.enqueue(pkt(2, MSS_BYTES, 0, false));
        assert_eq!(q.enqueue(pkt(3, MSS_BYTES, 0, false)), EnqueueOutcome::Dropped);
        // A 40 B ack still fits.
        assert!(matches!(
            q.enqueue(pkt(4, 0, 0, false)),
            EnqueueOutcome::Enqueued { .. }
        ));
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = PortQueue::new(QueueConfig::ecn(1_000_000, 2));
        // First two packets: below threshold, unmarked.
        for i in 0..2 {
            assert!(matches!(
                q.enqueue(pkt(i, 100, 0, true)),
                EnqueueOutcome::Enqueued { marked: false }
            ));
        }
        // Third: occupancy (2) >= K (2) -> marked.
        assert!(matches!(
            q.enqueue(pkt(2, 100, 0, true)),
            EnqueueOutcome::Enqueued { marked: true }
        ));
        assert_eq!(q.marked, 1);
        // Dequeue order preserved; third carries CE.
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::Ect);
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::Ect);
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::Ce);
    }

    #[test]
    fn ecn_does_not_mark_non_capable() {
        let mut q = PortQueue::new(QueueConfig::ecn(1_000_000, 0));
        assert!(matches!(
            q.enqueue(pkt(1, 100, 0, false)),
            EnqueueOutcome::Enqueued { marked: false }
        ));
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::NotEct);
    }

    #[test]
    fn strict_priority_serves_high_band_first() {
        let mut q = PortQueue::new(QueueConfig::priority(1_000_000, 4));
        q.enqueue(pkt(1, 100, 3, false)); // low priority
        q.enqueue(pkt(2, 100, 0, false)); // high priority
        q.enqueue(pkt(3, 100, 1, false));
        assert_eq!(q.dequeue().unwrap().id, 2);
        assert_eq!(q.dequeue().unwrap().id, 3);
        assert_eq!(q.dequeue().unwrap().id, 1);
    }

    #[test]
    fn priority_out_of_range_clamps_to_lowest_band() {
        let mut q = PortQueue::new(QueueConfig::priority(1_000_000, 2));
        q.enqueue(pkt(1, 100, 7, false)); // band clamped to 1
        q.enqueue(pkt(2, 100, 0, false));
        assert_eq!(q.dequeue().unwrap().id, 2);
        assert_eq!(q.dequeue().unwrap().id, 1);
    }

    #[test]
    fn byte_accounting_across_bands() {
        let mut q = PortQueue::new(QueueConfig::priority(10_000, 2));
        q.enqueue(pkt(1, 460, 0, false)); // 500 B wire
        q.enqueue(pkt(2, 960, 1, false)); // 1000 B wire
        assert_eq!(q.len_bytes(), 1_500);
        q.dequeue();
        assert_eq!(q.len_bytes(), 1_000);
        q.dequeue();
        assert_eq!(q.len_bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn enqueue_and_peak_counters() {
        let mut q = PortQueue::new(QueueConfig::drop_tail(3_000));
        q.enqueue(pkt(1, MSS_BYTES, 0, false));
        q.enqueue(pkt(2, MSS_BYTES, 0, false));
        q.enqueue(pkt(3, MSS_BYTES, 0, false)); // dropped
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.peak_bytes, 3_000);
        q.dequeue();
        q.enqueue(pkt(4, 0, 0, false));
        // Peak is a high-watermark: occupancy fell, peak stays.
        assert_eq!(q.peak_bytes, 3_000);
        assert_eq!(q.enqueued, 3);
    }
}
