//! Baseline accuracy and determinism tests for the fluid simulator: FCT
//! distributions vs the packet-level engine on the canonical scenarios
//! (the small-scale config recomposed at 2/4/8 clusters), with an
//! asserted W1 envelope, and bit-identity of repeated same-seed runs.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use flow_sim::FlowSim;

/// Declared accuracy envelope of the fluid baseline: W1(FCT) against the
/// packet-level engine stays below one packet-mean FCT on the canonical
/// scenarios. The fluid model is systematically optimistic (no slow
/// start, no retransmits), so the distance is real but bounded.
const FLUID_W1_BOUND: f64 = 1.0;

fn scenario(clusters: u32, seed: u64) -> SimConfig {
    let mut c = SimConfig::small_scale();
    c.topo.clusters = clusters;
    c.duration_s = 0.5;
    c.seed = seed;
    c
}

#[test]
fn fluid_fct_within_declared_w1_bound_of_packet_level() {
    for clusters in [2u32, 4, 8] {
        let cfg = scenario(clusters, 5);
        let fluid = FlowSim::new(cfg).run();
        let packet = Simulation::new(cfg).run();
        let f = fluid.fct_samples(|_| true);
        let p = packet.fct_samples(|_| true);
        assert!(
            !f.is_empty() && !p.is_empty(),
            "{clusters} clusters: no completed flows (fluid {}, packet {})",
            f.len(),
            p.len()
        );
        let p_mean = p.iter().sum::<f64>() / p.len() as f64;
        let w1 = wasserstein1(&f, &p);
        assert!(
            w1 < FLUID_W1_BOUND * p_mean,
            "{clusters} clusters: W1(FCT) {w1:.4}s outside bound {FLUID_W1_BOUND} x mean {p_mean:.4}s"
        );
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    for seed in [5u64, 17, 23] {
        let cfg = scenario(4, seed);
        let a = FlowSim::new(cfg).run();
        let b = FlowSim::new(cfg).run();
        let fa: Vec<u64> = a.fct_samples(|_| true).iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u64> = b.fct_samples(|_| true).iter().map(|v| v.to_bits()).collect();
        assert_eq!(fa, fb, "seed {seed}: FCT samples diverged between runs");
        let ta: Vec<u64> = a
            .throughput_samples(|_| true)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let tb: Vec<u64> = b
            .throughput_samples(|_| true)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(ta, tb, "seed {seed}: throughput samples diverged");
        assert_eq!(a.recomputes, b.recomputes, "seed {seed}: solver work diverged");
    }
}

#[test]
fn distinct_seeds_change_the_workload() {
    // Guard against a degenerate "determinism" where the seed is ignored.
    let a = FlowSim::new(scenario(4, 5)).run();
    let b = FlowSim::new(scenario(4, 6)).run();
    let fa: Vec<u64> = a.fct_samples(|_| true).iter().map(|v| v.to_bits()).collect();
    let fb: Vec<u64> = b.fct_samples(|_| true).iter().map(|v| v.to_bits()).collect();
    assert_ne!(fa, fb, "different seeds produced identical runs");
}
