//! Per-boundary-packet fluid latency estimates.
//!
//! The full [`FlowSim`](crate::FlowSim) re-solves a global max-min fair
//! allocation at every flow event — fine for a standalone baseline, far
//! too coupled for serving one cluster inside a composed packet
//! simulation. The adaptive Flow fidelity tier instead asks a *local*
//! fluid question per boundary packet: "if this cluster's fabric shared
//! its bandwidth equally over the flows currently crossing this boundary,
//! how long would this packet dwell inside?" [`ShareEstimator`] answers it
//! with the same modeling assumptions as the fluid simulator (no queues,
//! no retransmissions, equal shares) scoped to one (cluster, direction)
//! stream, which keeps the estimate O(active flows) per packet and —
//! crucially for the composed engine — a pure function of the stream's
//! own item order.

use dcn_sim::packet::FlowId;
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Equal-share fluid dwell estimator for one boundary stream.
///
/// A flow is *active* while the stream has seen a packet of it within the
/// trailing `window`; the estimator divides the configured bandwidth
/// equally among active flows (the fluid simulator's fair share, without
/// the cross-link coupling) and prices a packet at propagation plus
/// serialization at that share. Exit times are clamped monotone per
/// stream: fluids don't reorder.
#[derive(Clone, Debug)]
pub struct ShareEstimator {
    /// Shared bandwidth of the modeled path, bits/second.
    bw_bps: f64,
    /// Propagation through the cluster (hop count × link latency).
    base: SimDuration,
    /// Activity window: a flow idle longer than this stops claiming a
    /// share.
    window: SimDuration,
    /// Last packet time per active flow.
    active: HashMap<FlowId, SimTime>,
    /// Latest exit handed out (FIFO clamp).
    last_exit: SimTime,
}

impl ShareEstimator {
    pub fn new(bw_bps: u64, base: SimDuration, window: SimDuration) -> ShareEstimator {
        assert!(bw_bps > 0, "share estimator needs positive bandwidth");
        ShareEstimator {
            bw_bps: bw_bps as f64,
            base,
            window,
            active: HashMap::new(),
            last_exit: SimTime::ZERO,
        }
    }

    /// Flows currently holding a share.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// The propagation floor of every estimate.
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// Record a packet of `flow` at `now` and estimate its dwell:
    /// propagation plus serialization of `wire_bytes` at the current
    /// equal share. Returns the estimate and the active-flow count that
    /// priced it (the correction head's second feature). `now` must be
    /// non-decreasing across calls (boundary streams are).
    pub fn observe(&mut self, flow: FlowId, now: SimTime, wire_bytes: u32) -> (SimDuration, usize) {
        let horizon = now.as_nanos().saturating_sub(self.window.as_nanos());
        self.active.retain(|_, last| last.as_nanos() >= horizon);
        self.active.insert(flow, now);
        let n = self.active.len();
        let share = self.bw_bps / n as f64;
        let transmit = SimDuration::from_secs_f64(wire_bytes as f64 * 8.0 / share);
        (self.base + transmit, n)
    }

    /// Clamp a computed exit time monotone against everything this stream
    /// already emitted, and remember it.
    pub fn clamp_exit(&mut self, exit: SimTime) -> SimTime {
        let e = exit.max(self.last_exit);
        self.last_exit = e;
        e
    }

    /// Serialize the mutable state (active-flow map, FIFO clamp) in
    /// canonical (flow-id-sorted) order.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let mut entries: Vec<(u64, u64)> = self
            .active
            .iter()
            .map(|(f, t)| (f.0, t.as_nanos()))
            .collect();
        entries.sort_unstable();
        w.put_u64(entries.len() as u64);
        for (f, t) in entries {
            w.put_u64(f);
            w.put_u64(t);
        }
        w.put_u64(self.last_exit.as_nanos());
    }

    /// Restore state written by [`ShareEstimator::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(16)?;
        self.active.clear();
        for _ in 0..n {
            let flow = FlowId(r.get_u64()?);
            let t = SimTime(r.get_u64()?);
            self.active.insert(flow, t);
        }
        self.last_exit = SimTime(r.get_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> ShareEstimator {
        ShareEstimator::new(
            10_000_000,
            SimDuration::from_micros(1000),
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn single_flow_prices_at_line_rate() {
        let mut e = est();
        let (d, n) = e.observe(FlowId(1), SimTime::from_secs_f64(0.1), 1250);
        assert_eq!(n, 1);
        // 1250 B = 10 kb at 10 Mbps = 1 ms, plus the 1 ms base.
        assert!((d.as_secs_f64() - 0.002).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn shares_split_and_idle_flows_expire() {
        let mut e = est();
        let t = SimTime::from_secs_f64(0.1);
        e.observe(FlowId(1), t, 1250);
        let (d, n) = e.observe(FlowId(2), t, 1250);
        assert_eq!(n, 2);
        // Half the share doubles serialization: 2 ms + 1 ms base.
        assert!((d.as_secs_f64() - 0.003).abs() < 1e-9, "{d:?}");
        // 20 ms later flow 1 has expired; flow 2 is alone again.
        let (_, n) = e.observe(FlowId(2), t + SimDuration::from_millis(20), 1250);
        assert_eq!(n, 1);
    }

    #[test]
    fn exits_are_monotone() {
        let mut e = est();
        let a = e.clamp_exit(SimTime::from_secs_f64(0.5));
        let b = e.clamp_exit(SimTime::from_secs_f64(0.3));
        assert_eq!(a, SimTime::from_secs_f64(0.5));
        assert_eq!(b, a, "earlier exit must be clamped up");
    }

    #[test]
    fn state_round_trips() {
        let mut e = est();
        let t = SimTime::from_secs_f64(0.1);
        e.observe(FlowId(7), t, 1250);
        e.observe(FlowId(9), t, 400);
        e.clamp_exit(SimTime::from_secs_f64(0.2));
        let mut w = SnapWriter::new();
        e.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = est();
        restored
            .load_state(&mut SnapReader::new(&bytes))
            .expect("round trip");
        assert_eq!(restored.active_flows(), 2);
        assert_eq!(restored.clamp_exit(SimTime::ZERO), SimTime::from_secs_f64(0.2));
        // Canonical order: re-serializing is byte-identical.
        let mut w2 = SnapWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }
}
