//! # flow-sim — a max-min fair fluid flow-level simulator
//!
//! The paper's flow-level baseline is SimGrid v3.25 with its built-in
//! `FatTreeZone` (§9 "Methodology"). This crate reproduces that class of
//! simulator: flows are fluids, links are pipes, and at every flow arrival
//! or departure the simulator re-solves for the **max-min fair** allocation
//! of link bandwidth (progressive filling), then fast-forwards to the next
//! event. No packets, no queues, no RTTs — which is exactly why the paper
//! finds flow-level FCT distributions badly mismatched with packet-level
//! ground truth (Figures 1, 7) while still being expensive at scale
//! (it "must still track all of the Mimic-Mimic connections").
//!
//! Workloads come from the *same* [`dcn_sim::traffic::TrafficGen`] with the
//! same seed as the packet simulator, so comparisons are apples-to-apples
//! per the paper's methodology ("the topology and traffic pattern were
//! kept consistent").

pub mod boundary;

use dcn_sim::config::SimConfig;
use dcn_sim::link::Dir;
use dcn_sim::packet::FlowId;
use dcn_sim::routing::Router;
use dcn_sim::time::{SimDuration, SimTime};
use dcn_sim::topology::{FatTree, LinkId, NodeId};
use dcn_sim::traffic::TrafficGen;

/// One flow's lifecycle in the fluid simulation.
#[derive(Clone, Debug)]
pub struct FluidFlowRecord {
    pub flow: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    pub size_bytes: u64,
    pub start: SimTime,
    /// `None` if still active at simulation end.
    pub end: Option<SimTime>,
}

impl FluidFlowRecord {
    pub fn fct(&self) -> Option<f64> {
        self.end.map(|e| e.since(self.start).as_secs_f64())
    }
}

/// Results of a fluid simulation.
pub struct FlowMetrics {
    pub flows: Vec<FluidFlowRecord>,
    /// Delivered bytes per host per 100 ms bin.
    tput_bins: Vec<Vec<f64>>,
    bin_s: f64,
    /// Rate recomputations performed (the fluid analogue of event count).
    pub recomputes: u64,
}

impl FlowMetrics {
    /// Sorted FCT samples (seconds) over completed flows passing `filter`.
    pub fn fct_samples(&self, filter: impl Fn(&FluidFlowRecord) -> bool) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| filter(f))
            .filter_map(|f| f.fct())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Sorted per-(host, bin) throughput samples in bytes/second.
    pub fn throughput_samples(&self, filter: impl Fn(NodeId) -> bool) -> Vec<f64> {
        let mut v = Vec::new();
        for (h, bins) in self.tput_bins.iter().enumerate() {
            if !filter(NodeId(h as u32)) {
                continue;
            }
            for &b in bins {
                v.push(b / self.bin_s);
            }
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    pub fn flows_completed(&self) -> usize {
        self.flows.iter().filter(|f| f.end.is_some()).count()
    }
}

struct ActiveFlow {
    record_idx: usize,
    /// Directed links the fluid traverses.
    route: Vec<dcn_sim::routing::Hop>,
    remaining: f64,
    rate: f64,
    dst: NodeId,
}

/// The fluid simulator.
pub struct FlowSim {
    cfg: SimConfig,
    topo: FatTree,
    router: Router,
    /// Per-(link, dir) capacity in bytes/second.
    caps: Vec<[f64; 2]>,
}

impl FlowSim {
    pub fn new(cfg: SimConfig) -> FlowSim {
        let topo = FatTree::new(cfg.topo);
        let router = Router::new(topo.clone());
        let caps = (0..cfg.topo.num_links())
            .map(|l| {
                let bw = if topo.is_host_link(LinkId(l)) {
                    cfg.link.host_bw_bps
                } else {
                    cfg.link.fabric_bw_bps
                };
                let bytes_per_s = bw as f64 / 8.0;
                [bytes_per_s, bytes_per_s]
            })
            .collect();
        FlowSim {
            cfg,
            topo,
            router,
            caps,
        }
    }

    /// Max-min fair allocation by progressive filling. Rates are written
    /// into `flows[..].rate`.
    fn recompute_rates(&self, flows: &mut [ActiveFlow]) {
        for f in flows.iter_mut() {
            f.rate = 0.0;
        }
        let n = flows.len();
        if n == 0 {
            return;
        }
        let mut frozen = vec![false; n];
        // Remaining capacity and unfrozen-flow count per directed link.
        let mut cap: Vec<[f64; 2]> = self.caps.clone();
        let mut count: Vec<[u32; 2]> = vec![[0, 0]; self.caps.len()];
        for f in flows.iter() {
            for h in &f.route {
                count[h.link.0 as usize][h.dir.index()] += 1;
            }
        }
        let mut remaining = n;
        while remaining > 0 {
            // Find the directed link with the smallest fair share.
            let mut best: Option<(f64, usize, usize)> = None;
            for (li, (c, k)) in cap.iter().zip(&count).enumerate() {
                for d in 0..2 {
                    if k[d] > 0 {
                        let share = c[d] / k[d] as f64;
                        if best.is_none_or(|(s, _, _)| share < s) {
                            best = Some((share, li, d));
                        }
                    }
                }
            }
            let Some((share, bl, bd)) = best else {
                // No constrained links left (cannot happen: every flow
                // crosses at least its access links).
                break;
            };
            let bottleneck = dcn_sim::routing::Hop {
                link: LinkId(bl as u32),
                dir: [Dir::Up, Dir::Down][bd],
            };
            // Freeze every unfrozen flow crossing that link at `share`.
            for (fi, f) in flows.iter_mut().enumerate() {
                if frozen[fi] || !f.route.contains(&bottleneck) {
                    continue;
                }
                f.rate = share;
                frozen[fi] = true;
                remaining -= 1;
                for h in &f.route {
                    cap[h.link.0 as usize][h.dir.index()] -= share;
                    count[h.link.0 as usize][h.dir.index()] -= 1;
                }
            }
            // The bottleneck link itself may retain zero flows now; loop.
        }
    }

    /// Run the fluid simulation to `cfg.duration_s`.
    pub fn run(&mut self) -> FlowMetrics {
        let end = SimTime::from_secs_f64(self.cfg.duration_s);
        let bin = SimDuration(100_000_000); // 100 ms, as the paper bins
        let mut traffic = TrafficGen::new(
            self.topo.clone(),
            self.cfg.traffic,
            self.cfg.link.host_bw_bps,
            self.cfg.seed,
        );
        let num_hosts = self.cfg.topo.num_hosts();
        // Next arrival per host.
        let mut next_arrival: Vec<SimTime> = (0..num_hosts)
            .map(|h| traffic.first_arrival(NodeId(h)))
            .collect();

        let mut records: Vec<FluidFlowRecord> = Vec::new();
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut tput_bins: Vec<Vec<f64>> = vec![Vec::new(); num_hosts as usize];
        let mut recomputes = 0u64;
        let mut now = SimTime::ZERO;

        loop {
            // Next arrival over all hosts.
            let (host_idx, &t_arr) = next_arrival
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("at least one host");
            // Next completion among active flows. Round the duration *up*
            // to a whole nanosecond: rounding down would leave a sliver of
            // fluid behind and re-trigger the same completion time forever.
            let t_done = active
                .iter()
                .filter(|f| f.rate > 0.0)
                .map(|f| now + SimDuration((f.remaining / f.rate * 1e9).ceil() as u64))
                .min();

            let t_next = match t_done {
                Some(td) if td < t_arr => td,
                _ => t_arr,
            };
            if t_next > end {
                // Drain fluid up to `end` and stop.
                Self::advance(&mut active, &mut tput_bins, now, end, bin);
                break;
            }
            Self::advance(&mut active, &mut tput_bins, now, t_next, bin);
            now = t_next;

            if t_next == t_arr {
                // New flow at `host_idx`.
                let gf = traffic.next(NodeId(host_idx as u32), now);
                next_arrival[host_idx] = gf.next_arrival;
                let spec = gf.spec;
                let route = self.router.link_path(spec.id, spec.src, spec.dst);
                records.push(FluidFlowRecord {
                    flow: spec.id,
                    src: spec.src,
                    dst: spec.dst,
                    size_bytes: spec.size_bytes,
                    start: now,
                    end: None,
                });
                active.push(ActiveFlow {
                    record_idx: records.len() - 1,
                    route,
                    remaining: spec.size_bytes as f64,
                    rate: 0.0,
                    dst: spec.dst,
                });
            } else {
                // Complete every flow that hit zero (within a tolerance
                // covering sub-nanosecond rounding residue).
                let mut i = 0;
                while i < active.len() {
                    if active[i].remaining <= 1e-2 {
                        let f = active.swap_remove(i);
                        records[f.record_idx].end = Some(now);
                    } else {
                        i += 1;
                    }
                }
            }
            self.recompute_rates(&mut active);
            recomputes += 1;
        }

        FlowMetrics {
            flows: records,
            tput_bins,
            bin_s: bin.as_secs_f64(),
            recomputes,
        }
    }

    /// Move fluid from `from` to `to`, crediting delivered bytes into the
    /// destination hosts' throughput bins (split across bin boundaries).
    fn advance(
        active: &mut [ActiveFlow],
        bins: &mut [Vec<f64>],
        from: SimTime,
        to: SimTime,
        bin: SimDuration,
    ) {
        if to <= from {
            return;
        }
        let dt = to.since(from).as_secs_f64();
        for f in active.iter_mut() {
            if f.rate <= 0.0 {
                continue;
            }
            let moved = (f.rate * dt).min(f.remaining);
            f.remaining -= moved;
            // Credit into bins, splitting at bin boundaries.
            let host_bins = &mut bins[f.dst.0 as usize];
            let mut t0 = from.as_nanos();
            let t1 = to.as_nanos();
            let bytes_per_ns = moved / (t1 - t0) as f64;
            while t0 < t1 {
                let idx = (t0 / bin.as_nanos()) as usize;
                let bin_end = ((idx as u64 + 1) * bin.as_nanos()).min(t1);
                if host_bins.len() <= idx {
                    host_bins.resize(idx + 1, 0.0);
                }
                host_bins[idx] += bytes_per_ns * (bin_end - t0) as f64;
                t0 = bin_end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::config::FlowSizeDist;

    fn cfg() -> SimConfig {
        let mut c = SimConfig::small_scale();
        c.duration_s = 1.0;
        c.seed = 5;
        c
    }

    #[test]
    fn flows_complete_with_reasonable_fcts() {
        let mut sim = FlowSim::new(cfg());
        let m = sim.run();
        assert!(m.flows_completed() > 0);
        // FCTs cannot beat line rate: fct >= size * 8 / bw.
        for f in &m.flows {
            if let Some(fct) = f.fct() {
                let min_fct = f.size_bytes as f64 * 8.0 / 10e6;
                assert!(
                    fct >= min_fct * 0.999,
                    "fct {fct} below line rate bound {min_fct}"
                );
            }
        }
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        // With a tiny load there is effectively no sharing, so FCT should
        // approach size/bandwidth exactly.
        let mut c = cfg();
        c.traffic.load = 0.01;
        c.traffic.size = FlowSizeDist::Fixed { bytes: 125_000 }; // 0.1 s at 10 Mbps
        c.duration_s = 5.0;
        let mut sim = FlowSim::new(c);
        let m = sim.run();
        let fcts = m.fct_samples(|_| true);
        assert!(!fcts.is_empty());
        let median = fcts[fcts.len() / 2];
        assert!(
            (median - 0.1).abs() < 0.01,
            "median {median} should be ~0.1 s"
        );
    }

    #[test]
    fn sharing_halves_rates() {
        // Two hosts sending to the same destination share its access link.
        let sim = FlowSim::new(cfg());
        let topo = FatTree::new(cfg().topo);
        let router = Router::new(topo.clone());
        let a = topo.host(0, 0, 0);
        let b = topo.host(0, 0, 1);
        let dst = topo.host(0, 1, 0);
        let mut flows = vec![
            ActiveFlow {
                record_idx: 0,
                route: router.link_path(FlowId(1), a, dst),
                remaining: 1e9,
                rate: 0.0,
                dst,
            },
            ActiveFlow {
                record_idx: 1,
                route: router.link_path(FlowId(2), b, dst),
                remaining: 1e9,
                rate: 0.0,
                dst,
            },
        ];
        sim.recompute_rates(&mut flows);
        let line = 10e6 / 8.0;
        assert!((flows[0].rate - line / 2.0).abs() < 1.0);
        assert!((flows[1].rate - line / 2.0).abs() < 1.0);
    }

    #[test]
    fn max_min_gives_unshared_flow_a_fair_rate() {
        let sim = FlowSim::new(cfg());
        let topo = FatTree::new(cfg().topo);
        let router = Router::new(topo.clone());
        // Flows 1 and 2 share dst1's access link; flow 3 is alone at dst2.
        let dst1 = topo.host(1, 0, 0);
        let dst2 = topo.host(1, 1, 1);
        let mut flows = vec![
            ActiveFlow {
                record_idx: 0,
                route: router.link_path(FlowId(1), topo.host(0, 0, 0), dst1),
                remaining: 1e9,
                rate: 0.0,
                dst: dst1,
            },
            ActiveFlow {
                record_idx: 1,
                route: router.link_path(FlowId(2), topo.host(0, 0, 1), dst1),
                remaining: 1e9,
                rate: 0.0,
                dst: dst1,
            },
            ActiveFlow {
                record_idx: 2,
                route: router.link_path(FlowId(3), topo.host(0, 1, 0), dst2),
                remaining: 1e9,
                rate: 0.0,
                dst: dst2,
            },
        ];
        sim.recompute_rates(&mut flows);
        let line = 10e6 / 8.0;
        assert!((flows[0].rate - line / 2.0).abs() < 1.0);
        assert!((flows[1].rate - line / 2.0).abs() < 1.0);
        // Flow 3 may share fabric links with 1/2 depending on ECMP, but
        // never gets less than a 3-way share.
        assert!(flows[2].rate >= line / 3.0 - 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = FlowSim::new(cfg());
            let m = sim.run();
            (m.flows.len(), m.flows_completed(), m.recomputes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn workload_matches_packet_simulator() {
        // Same seed -> same flow ids/sizes as dcn-sim's generator.
        let mut sim = FlowSim::new(cfg());
        let fluid = sim.run();
        let mut packet = dcn_sim::simulator::Simulation::new(cfg());
        let pm = packet.run();
        let started: std::collections::HashSet<_> = pm.flows.keys().collect();
        let matched = fluid
            .flows
            .iter()
            .filter(|f| started.contains(&f.flow))
            .count();
        assert!(
            matched as f64 / fluid.flows.len() as f64 > 0.95,
            "only {matched}/{} flows matched",
            fluid.flows.len()
        );
    }

    #[test]
    fn throughput_bins_account_all_bytes() {
        let mut sim = FlowSim::new(cfg());
        let m = sim.run();
        let binned: f64 = m.tput_bins.iter().flatten().sum();
        let completed: f64 = m
            .flows
            .iter()
            .filter(|f| f.end.is_some())
            .map(|f| f.size_bytes as f64)
            .sum();
        // Binned bytes >= completed bytes (active flows also contribute).
        assert!(binned >= completed * 0.999, "binned {binned} < {completed}");
    }

    #[test]
    fn fluid_fcts_are_optimistic_vs_packet_level() {
        // Flow-level simulation ignores RTT, slow start, and losses, so its
        // mean FCT should undercut the packet simulator's — the systematic
        // bias Figures 1/7 of the paper show.
        let mut fluid = FlowSim::new(cfg());
        let fm = fluid.run();
        let mut packet = dcn_sim::simulator::Simulation::with_transport(
            cfg(),
            Box::new(dcn_sim::transport::testing::FixedWindowFactory::default()),
        );
        let pm = packet.run();
        let f_mean = dcn_sim::stats::mean(&fm.fct_samples(|_| true));
        let p_mean = dcn_sim::stats::mean(&pm.fct_samples(|_| true));
        assert!(
            f_mean < p_mean,
            "fluid mean {f_mean} should undercut packet mean {p_mean}"
        );
    }
}
